//! The catalog of large content providers the passive campaign targets.
//!
//! §3.1 of the paper: 34 DNS names of 14 large content providers (top
//! Sandvine applications + top Quantcast sites). Traceroutes toward them end
//! in 218 distinct destination ASes — far more than 14 — because "large
//! numbers of content servers are hosted outside the provider's network
//! (e.g., inside ISPs)" (Akamai/Netflix-style off-net caches). The catalog
//! therefore distinguishes a provider's own origin ASes from its off-net
//! deployments, and DNS resolution picks per-client among them.

use ir_types::{Asn, Ipv4, OrgId, Prefix};
use serde::{Deserialize, Serialize};

/// One deployment (a place a hostname can resolve into).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Deployment {
    /// AS hosting the servers — the provider's own AS or a third-party
    /// (eyeball/ISP) AS for off-net caches.
    pub host_as: Asn,
    /// Address block the servers answer from (inside `host_as`'s space).
    pub prefix: Prefix,
    /// Whether this is an off-net cache (hosted outside the provider's
    /// network).
    pub offnet: bool,
}

impl Deployment {
    /// A representative server address within the deployment.
    pub fn server_ip(&self) -> Ipv4 {
        // Use the highest host address so it never collides with the router
        // interface addresses the data plane allocates from the low end.
        self.prefix.addr(self.prefix.size() - 1)
    }
}

/// A content provider (Akamai/Netflix/Google-like).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ContentProvider {
    /// Organization operating the provider (ties into sibling inference).
    pub org: OrgId,
    /// Display name ("content3").
    pub name: String,
    /// DNS names the measurement campaign targets (≥ 1 each, 34 total in
    /// the paper).
    pub hostnames: Vec<String>,
    /// The provider's own origin ASes.
    pub origin_asns: Vec<Asn>,
    /// All deployments, on-net first.
    pub deployments: Vec<Deployment>,
}

/// The full catalog.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ContentCatalog {
    providers: Vec<ContentProvider>,
}

impl ContentCatalog {
    /// Adds a provider.
    pub fn add(&mut self, p: ContentProvider) {
        assert!(
            !p.hostnames.is_empty(),
            "provider {} has no hostnames",
            p.name
        );
        assert!(
            !p.deployments.is_empty(),
            "provider {} has no deployments",
            p.name
        );
        self.providers.push(p);
    }

    /// All providers.
    pub fn providers(&self) -> &[ContentProvider] {
        &self.providers
    }

    /// Total number of hostnames across providers (34 in the paper).
    pub fn hostname_count(&self) -> usize {
        self.providers.iter().map(|p| p.hostnames.len()).sum()
    }

    /// Iterates `(provider index, hostname)` pairs in catalog order.
    pub fn hostnames(&self) -> impl Iterator<Item = (usize, &str)> {
        self.providers
            .iter()
            .enumerate()
            .flat_map(|(i, p)| p.hostnames.iter().map(move |h| (i, h.as_str())))
    }

    /// The provider a hostname belongs to.
    pub fn provider_of(&self, hostname: &str) -> Option<&ContentProvider> {
        self.providers
            .iter()
            .find(|p| p.hostnames.iter().any(|h| h == hostname))
    }

    /// All ASNs that can appear as traceroute destinations (origin ASes and
    /// off-net hosts) — the "218 destination ASes" effect.
    pub fn destination_asns(&self) -> Vec<Asn> {
        let mut asns: Vec<Asn> = self
            .providers
            .iter()
            .flat_map(|p| p.deployments.iter().map(|d| d.host_as))
            .collect();
        asns.sort_unstable();
        asns.dedup();
        asns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> ContentCatalog {
        let mut c = ContentCatalog::default();
        c.add(ContentProvider {
            org: OrgId(0),
            name: "content0".into(),
            hostnames: vec!["www.content0.example".into(), "cdn.content0.example".into()],
            origin_asns: vec![Asn(500)],
            deployments: vec![
                Deployment {
                    host_as: Asn(500),
                    prefix: "10.5.0.0/24".parse().unwrap(),
                    offnet: false,
                },
                Deployment {
                    host_as: Asn(42),
                    prefix: "10.9.1.0/26".parse().unwrap(),
                    offnet: true,
                },
            ],
        });
        c
    }

    #[test]
    fn hostname_lookup_and_counts() {
        let c = catalog();
        assert_eq!(c.hostname_count(), 2);
        assert_eq!(
            c.provider_of("cdn.content0.example").unwrap().name,
            "content0"
        );
        assert!(c.provider_of("nope.example").is_none());
        assert_eq!(c.hostnames().count(), 2);
    }

    #[test]
    fn destinations_include_offnet_hosts() {
        let c = catalog();
        assert_eq!(c.destination_asns(), vec![Asn(42), Asn(500)]);
    }

    #[test]
    fn server_ip_is_inside_prefix() {
        let c = catalog();
        for d in &c.providers()[0].deployments {
            assert!(d.prefix.contains(d.server_ip()));
        }
    }
}
