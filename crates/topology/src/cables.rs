//! Undersea cable systems.
//!
//! §6 of the paper: some cables are jointly owned by large ISPs
//! (Pan-American Crossing, Americas-II), while others (EAC-C2C/PACNET) are
//! operated by independent organizations with their own ASNs and prefixes.
//! Independent cable ASes only provide point-to-point transit along the
//! cable — they originate no traffic and peer only at the landing points —
//! so they "resemble high-latency, high-cost IXPs" and confuse relationship
//! inference. The paper identifies them from the TeleGeography Submarine
//! Cable Map; our [`CableMap`] plays that side-list role.

use ir_types::{Asn, CityId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Who operates a cable system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CableOwnership {
    /// Jointly owned by a consortium of ISPs; the cable has no ASN of its
    /// own and appears as ordinary (often hybrid) links between the owners.
    Consortium(Vec<Asn>),
    /// Operated by an independent organization under its own ASN; the cable
    /// AS appears in the data plane on intercontinental paths.
    Independent(Asn),
}

/// One undersea cable system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CableSystem {
    /// Synthesized name ("cable3").
    pub name: String,
    /// Coastal cities where the cable lands (≥ 2, on ≥ 2 continents).
    pub landings: Vec<CityId>,
    /// Operator.
    pub ownership: CableOwnership,
}

impl CableSystem {
    /// The cable's own ASN, if independently operated.
    pub fn own_asn(&self) -> Option<Asn> {
        match &self.ownership {
            CableOwnership::Independent(asn) => Some(*asn),
            CableOwnership::Consortium(_) => None,
        }
    }
}

/// The TeleGeography-like side list of cable systems.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CableMap {
    systems: Vec<CableSystem>,
}

impl CableMap {
    /// Adds a cable system to the map.
    pub fn add(&mut self, system: CableSystem) {
        assert!(
            system.landings.len() >= 2,
            "cable {} needs ≥2 landings",
            system.name
        );
        self.systems.push(system);
    }

    /// All systems.
    pub fn systems(&self) -> &[CableSystem] {
        &self.systems
    }

    /// The set of ASNs belonging to independent cable operators — the list
    /// the §6/Table 4 analysis uses to attribute deviations to cables.
    pub fn cable_asns(&self) -> BTreeSet<Asn> {
        self.systems.iter().filter_map(|s| s.own_asn()).collect()
    }

    /// Whether an ASN is an independently-operated cable AS.
    pub fn is_cable_asn(&self, asn: Asn) -> bool {
        self.systems.iter().any(|s| s.own_asn() == Some(asn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cable_asns_only_from_independents() {
        let mut map = CableMap::default();
        map.add(CableSystem {
            name: "consortium-cable".into(),
            landings: vec![CityId(0), CityId(9)],
            ownership: CableOwnership::Consortium(vec![Asn(1), Asn(2)]),
        });
        map.add(CableSystem {
            name: "pacnet-like".into(),
            landings: vec![CityId(1), CityId(8)],
            ownership: CableOwnership::Independent(Asn(77)),
        });
        assert_eq!(
            map.cable_asns().into_iter().collect::<Vec<_>>(),
            vec![Asn(77)]
        );
        assert!(map.is_cable_asn(Asn(77)));
        assert!(!map.is_cable_asn(Asn(1)));
        assert_eq!(map.systems().len(), 2);
    }

    #[test]
    #[should_panic(expected = "needs ≥2 landings")]
    fn single_landing_rejected() {
        let mut map = CableMap::default();
        map.add(CableSystem {
            name: "bad".into(),
            landings: vec![CityId(0)],
            ownership: CableOwnership::Independent(Asn(1)),
        });
    }
}
