//! Oliveira et al.-style AS classification over *inferred* data.
//!
//! [`crate::graph::AsGraph::as_type`] classifies with ground-truth
//! knowledge; the paper instead classifies vantage-point ASes (Table 1)
//! using inferred topologies. This module provides the same structural
//! classification over a [`RelationshipDb`], so Table 1 can be produced the
//! way the paper produced it.

use crate::reldb::RelationshipDb;
use ir_types::{AsType, Asn, Relationship};
use std::collections::{BTreeMap, BTreeSet};

/// Classifier over an inferred relationship snapshot.
pub struct TypeClassifier {
    customers: BTreeMap<Asn, Vec<Asn>>,
    has_provider: BTreeSet<Asn>,
}

impl TypeClassifier {
    /// Indexes the snapshot for classification queries.
    pub fn new(db: &RelationshipDb) -> TypeClassifier {
        let mut customers: BTreeMap<Asn, Vec<Asn>> = BTreeMap::new();
        let mut has_provider = BTreeSet::new();
        for (a, b, rel) in db.iter() {
            match rel {
                // rel is b-from-a.
                Relationship::Provider => {
                    customers.entry(b).or_default().push(a);
                    has_provider.insert(a);
                }
                Relationship::Customer => {
                    customers.entry(a).or_default().push(b);
                    has_provider.insert(b);
                }
                Relationship::Peer | Relationship::Sibling => {}
            }
        }
        TypeClassifier {
            customers,
            has_provider,
        }
    }

    /// Customer-cone size of `asn` (itself included).
    pub fn cone_size(&self, asn: Asn) -> usize {
        let mut seen = BTreeSet::from([asn]);
        let mut stack = vec![asn];
        while let Some(x) = stack.pop() {
            if let Some(cs) = self.customers.get(&x) {
                for &c in cs {
                    if seen.insert(c) {
                        stack.push(c);
                    }
                }
            }
        }
        seen.len()
    }

    /// Classification mirroring [`crate::graph::AsGraph::as_type`]: Tier-1 =
    /// provider-free with customers; then by customer-cone size.
    pub fn classify(&self, asn: Asn) -> AsType {
        let cone = self.cone_size(asn);
        if !self.has_provider.contains(&asn) && cone > 1 {
            return AsType::Tier1;
        }
        match cone {
            1 => AsType::Stub,
            2..=50 => AsType::SmallIsp,
            _ => AsType::LargeIsp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1 ← 2 ← {3,4}; 1—5 peer; 3,4,5 stubs, 2 small ISP, 1 tier-1.
    fn db() -> RelationshipDb {
        let mut db = RelationshipDb::default();
        db.insert(Asn(2), Asn(1), Relationship::Provider);
        db.insert(Asn(3), Asn(2), Relationship::Provider);
        db.insert(Asn(4), Asn(2), Relationship::Provider);
        db.insert(Asn(1), Asn(5), Relationship::Peer);
        db
    }

    #[test]
    fn cone_sizes() {
        let c = TypeClassifier::new(&db());
        assert_eq!(c.cone_size(Asn(1)), 4);
        assert_eq!(c.cone_size(Asn(2)), 3);
        assert_eq!(c.cone_size(Asn(3)), 1);
        assert_eq!(c.cone_size(Asn(5)), 1);
    }

    #[test]
    fn classification() {
        let c = TypeClassifier::new(&db());
        assert_eq!(c.classify(Asn(1)), AsType::Tier1);
        assert_eq!(c.classify(Asn(2)), AsType::SmallIsp);
        assert_eq!(c.classify(Asn(3)), AsType::Stub);
        assert_eq!(c.classify(Asn(5)), AsType::Stub); // peer-only, no customers
    }

    #[test]
    fn cone_handles_cycles() {
        // Inference artifacts can produce c2p cycles; cone must terminate.
        let mut db = RelationshipDb::default();
        db.insert(Asn(1), Asn(2), Relationship::Customer); // 2 customer of 1
        db.insert(Asn(2), Asn(3), Relationship::Customer);
        db.insert(Asn(3), Asn(1), Relationship::Customer);
        let c = TypeClassifier::new(&db);
        assert_eq!(c.cone_size(Asn(1)), 3);
    }
}
