//! Inferred-relationship databases (the "CAIDA topology" role).
//!
//! The paper classifies measured paths against CAIDA's *inferred* AS
//! relationships, not against ground truth (which nobody has). A
//! [`RelationshipDb`] is the in-memory form of one such snapshot: a set of
//! AS links labeled c2p/p2p/sibling. It is produced by `ir-inference`,
//! aggregated across monthly snapshots (§3.3), optionally patched with
//! complex-relationship and cable-list side data, and consumed by
//! `ir-core`'s model computation.

use ir_types::{Asn, EdgeRel, Relationship};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A snapshot of inferred AS relationships.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelationshipDb {
    /// Canonical storage: key is `(min_asn, max_asn)`, value the edge label
    /// oriented so that "a" is the key's first element.
    edges: BTreeMap<(Asn, Asn), EdgeRel>,
}

impl RelationshipDb {
    /// Inserts/overwrites the relationship between `a` and `b`, where `rel`
    /// is `b` as seen from `a`.
    ///
    /// Storage convention: `CustomerToProvider` entries are keyed
    /// `(customer, provider)`; symmetric labels (peer, sibling) are keyed
    /// `(min, max)`. Exactly one orientation of a pair is ever present.
    pub fn insert(&mut self, a: Asn, b: Asn, rel_of_b_from_a: Relationship) {
        assert_ne!(a, b, "self relationship on {a}");
        // A re-insert may change the c2p orientation (and thus the key), so
        // drop any existing entry for the pair first.
        self.remove(a, b);
        let (key, edge) = match rel_of_b_from_a {
            Relationship::Provider => ((a, b), EdgeRel::CustomerToProvider),
            Relationship::Customer => ((b, a), EdgeRel::CustomerToProvider),
            Relationship::Peer => ((a.min(b), a.max(b)), EdgeRel::PeerToPeer),
            Relationship::Sibling => ((a.min(b), a.max(b)), EdgeRel::SiblingToSibling),
        };
        self.edges.insert(key, edge);
    }

    /// Looks up the relationship of `b` as seen from `a`.
    pub fn rel(&self, a: Asn, b: Asn) -> Option<Relationship> {
        if let Some(e) = self.edges.get(&(a, b)) {
            return Some(e.from_a());
        }
        if let Some(e) = self.edges.get(&(b, a)) {
            return Some(e.from_b());
        }
        None
    }

    /// Whether a link between `a` and `b` is known at all.
    pub fn has_link(&self, a: Asn, b: Asn) -> bool {
        self.edges.contains_key(&(a, b)) || self.edges.contains_key(&(b, a))
    }

    /// Removes the link between `a` and `b` if present; returns whether it
    /// existed (used to apply stale-link corrections).
    pub fn remove(&mut self, a: Asn, b: Asn) -> bool {
        self.edges.remove(&(a, b)).is_some() || self.edges.remove(&(b, a)).is_some()
    }

    /// Number of links in the snapshot.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Iterates `(a, b, rel-of-b-from-a)` triples in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, Asn, Relationship)> + '_ {
        self.edges.iter().map(|(&(a, b), e)| (a, b, e.from_a()))
    }

    /// All ASNs mentioned by any link, deduplicated, ascending.
    pub fn asns(&self) -> Vec<Asn> {
        let mut v: Vec<Asn> = self.edges.keys().flat_map(|&(a, b)| [a, b]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Neighbors of `x` with their relationship as seen from `x`.
    ///
    /// O(len) — fine for analysis passes; the hot path (`ir-core`'s model
    /// computation) converts the db into an indexed adjacency first.
    pub fn neighbors_of(&self, x: Asn) -> Vec<(Asn, Relationship)> {
        let mut out = Vec::new();
        for (&(a, b), e) in &self.edges {
            if a == x {
                out.push((b, e.from_a()));
            } else if b == x {
                out.push((a, e.from_b()));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query_both_directions() {
        let mut db = RelationshipDb::default();
        db.insert(Asn(2), Asn(1), Relationship::Provider); // 1 is provider of 2
        assert_eq!(db.rel(Asn(2), Asn(1)), Some(Relationship::Provider));
        assert_eq!(db.rel(Asn(1), Asn(2)), Some(Relationship::Customer));
        assert!(db.has_link(Asn(1), Asn(2)));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn orientation_independent_of_insert_order() {
        let mut a = RelationshipDb::default();
        a.insert(Asn(10), Asn(20), Relationship::Customer); // 20 is customer of 10
        let mut b = RelationshipDb::default();
        b.insert(Asn(20), Asn(10), Relationship::Provider); // same fact
        assert_eq!(a, b);
        assert_eq!(a.rel(Asn(20), Asn(10)), Some(Relationship::Provider));
    }

    #[test]
    fn peers_and_siblings_symmetric() {
        let mut db = RelationshipDb::default();
        db.insert(Asn(1), Asn(2), Relationship::Peer);
        db.insert(Asn(3), Asn(4), Relationship::Sibling);
        assert_eq!(db.rel(Asn(2), Asn(1)), Some(Relationship::Peer));
        assert_eq!(db.rel(Asn(4), Asn(3)), Some(Relationship::Sibling));
    }

    #[test]
    fn overwrite_updates_label() {
        let mut db = RelationshipDb::default();
        db.insert(Asn(1), Asn(2), Relationship::Peer);
        db.insert(Asn(1), Asn(2), Relationship::Provider); // reclassified
        assert_eq!(db.rel(Asn(1), Asn(2)), Some(Relationship::Provider));
        assert_eq!(db.len(), 1);
        // Flipping the c2p orientation must not leave a stale second entry.
        db.insert(Asn(1), Asn(2), Relationship::Customer);
        assert_eq!(db.rel(Asn(1), Asn(2)), Some(Relationship::Customer));
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn remove_and_neighbors() {
        let mut db = RelationshipDb::default();
        db.insert(Asn(1), Asn(2), Relationship::Peer);
        db.insert(Asn(1), Asn(3), Relationship::Customer);
        let n = db.neighbors_of(Asn(1));
        assert_eq!(n.len(), 2);
        assert!(n.contains(&(Asn(3), Relationship::Customer)));
        assert!(db.remove(Asn(2), Asn(1)));
        assert!(!db.has_link(Asn(1), Asn(2)));
        assert!(!db.remove(Asn(1), Asn(2)));
        assert_eq!(db.asns(), vec![Asn(1), Asn(3)]);
    }
}
