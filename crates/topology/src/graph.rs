//! The ground-truth AS graph.
//!
//! Nodes are ASes with geographic footprints and roles; edges are
//! interconnections annotated with the business relationship *per
//! interconnection city* — the representation needed to express the hybrid
//! relationships of Giotsas et al. (§4.1 of the paper), where the same AS
//! pair peers in one city and has a transit arrangement in another.

use crate::arena::AsnInterner;
use ir_types::{AsType, Asn, CityId, CountryId, OrgId, Prefix, Relationship};
use serde::{Deserialize, Serialize};

/// Dense index of a node inside an [`AsGraph`].
pub type NodeIdx = usize;

/// Functional role of an AS in the synthetic world. Orthogonal to the
/// structural [`AsType`] classification (a content AS is usually a stub,
/// but large content providers can have sizeable customer cones).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AsRole {
    /// Sells transit (tier-1s, large and small ISPs).
    Transit,
    /// Access/eyeball network hosting end users (and RIPE-Atlas-like probes).
    Eyeball,
    /// Large content provider (the passive campaign's destinations).
    Content,
    /// Research & education network (Internet2/GEANT-like; hosts the
    /// PEERING-like testbed muxes).
    Education,
    /// Undersea-cable operator with its own ASN (EAC-C2C/PACNET-like).
    CableOperator,
    /// Enterprise stub.
    Enterprise,
}

/// Kind of an interconnection, used by the generator and the analyses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// Ordinary private or IXP interconnection.
    Normal,
    /// A backup arrangement: ground truth deprioritizes it below every other
    /// route class (the §4.4 violations U/E route this way).
    Backup,
    /// A segment of an undersea cable system (one endpoint is a
    /// [`AsRole::CableOperator`] AS).
    CableSegment,
}

/// One directed view of an (undirected) interconnection between two ASes.
///
/// `rel` is the relationship of `peer` *as seen from the owning node* — e.g.
/// `Relationship::Customer` means "`peer` is my customer".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Index of the neighboring AS.
    pub peer: NodeIdx,
    /// Default relationship of `peer` from this side.
    pub rel: Relationship,
    /// Hybrid relationships: overrides of `rel` at specific interconnection
    /// cities. Empty for ordinary links.
    pub rel_by_city: Vec<(CityId, Relationship)>,
    /// Cities where the two ASes interconnect (at least one).
    pub cities: Vec<CityId>,
    /// IGP cost from this AS's "center" to the interconnection (hot-potato
    /// tie-breaker input).
    pub igp_cost: u32,
    /// What kind of interconnection this is.
    pub kind: LinkKind,
}

impl Link {
    /// Relationship to use for traffic entering/leaving at `city`, honoring
    /// hybrid per-city overrides.
    pub fn rel_at(&self, city: CityId) -> Relationship {
        self.rel_by_city
            .iter()
            .find(|(c, _)| *c == city)
            .map(|(_, r)| *r)
            .unwrap_or(self.rel)
    }

    /// Whether this link has city-dependent (hybrid) relationships.
    pub fn is_hybrid(&self) -> bool {
        self.rel_by_city.iter().any(|(_, r)| *r != self.rel)
    }
}

/// A node of the AS graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsNode {
    pub asn: Asn,
    /// Organization operating this AS (siblings share it).
    pub org: OrgId,
    /// Country the AS is registered in (what whois would say).
    pub home_country: CountryId,
    /// Cities where the AS has points of presence.
    pub presence: Vec<CityId>,
    /// Functional role.
    pub role: AsRole,
    /// Prefixes originated by this AS.
    pub prefixes: Vec<Prefix>,
}

/// The ground-truth AS-level topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AsGraph {
    nodes: Vec<AsNode>,
    adj: Vec<Vec<Link>>,
    /// Node indices are interner indices: both are assigned densely in
    /// insertion order, so `interner.get(asn) == Some(idx)` for every node.
    interner: AsnInterner,
}

impl AsGraph {
    /// Adds a node; its ASN must be unique. Returns the node's index.
    pub fn add_node(&mut self, node: AsNode) -> NodeIdx {
        let idx = self.nodes.len();
        let interned = self.interner.intern(node.asn) as NodeIdx;
        assert!(interned == idx, "duplicate ASN {}", node.asn);
        self.nodes.push(node);
        self.adj.push(Vec::new());
        idx
    }

    /// Connects `a` and `b` with relationship `rel_of_b_from_a` (what `b` is
    /// to `a`; the reverse view is derived). Panics if the link already
    /// exists or connects a node to itself.
    pub fn add_link(
        &mut self,
        a: NodeIdx,
        b: NodeIdx,
        rel_of_b_from_a: Relationship,
        cities: Vec<CityId>,
        kind: LinkKind,
    ) {
        assert_ne!(a, b, "self-link on {}", self.nodes[a].asn);
        assert!(!cities.is_empty(), "link needs an interconnection city");
        // Probe the smaller adjacency: hubs in internet-scale worlds carry
        // tens of thousands of links, stubs a handful, so scanning the stub
        // side keeps wiring O(E) overall instead of O(E · max-degree).
        let (probe, want) = if self.adj[a].len() <= self.adj[b].len() {
            (a, b)
        } else {
            (b, a)
        };
        assert!(
            !self.adj[probe].iter().any(|l| l.peer == want),
            "duplicate link {} - {}",
            self.nodes[a].asn,
            self.nodes[b].asn
        );
        self.adj[a].push(Link {
            peer: b,
            rel: rel_of_b_from_a,
            rel_by_city: Vec::new(),
            cities: cities.clone(),
            igp_cost: 1,
            kind,
        });
        self.adj[b].push(Link {
            peer: a,
            rel: rel_of_b_from_a.reverse(),
            rel_by_city: Vec::new(),
            cities,
            igp_cost: 1,
            kind,
        });
    }

    /// Sets a hybrid (per-city) relationship override on the `a`–`b` link;
    /// both directional views are updated consistently.
    pub fn set_hybrid(
        &mut self,
        a: NodeIdx,
        b: NodeIdx,
        city: CityId,
        rel_of_b_from_a: Relationship,
    ) {
        let la = self
            .link_mut(a, b)
            .unwrap_or_else(|| panic!("hybrid on missing link {a}–{b}"));
        la.rel_by_city.retain(|(c, _)| *c != city);
        la.rel_by_city.push((city, rel_of_b_from_a));
        if !la.cities.contains(&city) {
            la.cities.push(city);
        }
        let lb = self
            .link_mut(b, a)
            .unwrap_or_else(|| panic!("hybrid on missing link {a}–{b}"));
        lb.rel_by_city.retain(|(c, _)| *c != city);
        lb.rel_by_city.push((city, rel_of_b_from_a.reverse()));
        if !lb.cities.contains(&city) {
            lb.cities.push(city);
        }
    }

    /// Sets the IGP cost of the directional view `a → b`.
    pub fn set_igp_cost(&mut self, a: NodeIdx, b: NodeIdx, cost: u32) {
        self.link_mut(a, b)
            .unwrap_or_else(|| panic!("igp cost on missing link {a}–{b}"))
            .igp_cost = cost;
    }

    /// Sets the IGP cost of `a`'s `i`-th directional link by position,
    /// skipping the peer scan. The bulk-randomization pass over every
    /// directional view would otherwise cost O(Σ deg²).
    pub fn set_igp_cost_at(&mut self, a: NodeIdx, i: usize, cost: u32) {
        self.adj[a][i].igp_cost = cost;
    }

    /// Removes the link between `a` and `b` (both directional views).
    /// Returns whether it existed. Used by the snapshot-churn machinery.
    pub fn remove_link(&mut self, a: NodeIdx, b: NodeIdx) -> bool {
        let before = self.adj[a].len();
        self.adj[a].retain(|l| l.peer != b);
        self.adj[b].retain(|l| l.peer != a);
        before != self.adj[a].len()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node record by index.
    pub fn node(&self, idx: NodeIdx) -> &AsNode {
        &self.nodes[idx]
    }

    /// Mutable node record by index.
    pub fn node_mut(&mut self, idx: NodeIdx) -> &mut AsNode {
        &mut self.nodes[idx]
    }

    /// All nodes in index order.
    pub fn nodes(&self) -> &[AsNode] {
        &self.nodes
    }

    /// Index of the node with the given ASN. O(1) via the interner.
    pub fn index_of(&self, asn: Asn) -> Option<NodeIdx> {
        self.interner.get(asn).map(|i| i as NodeIdx)
    }

    /// The graph's `Asn ↔ NodeIdx` interner.
    pub fn interner(&self) -> &AsnInterner {
        &self.interner
    }

    /// ASN of the node at `idx`.
    pub fn asn(&self, idx: NodeIdx) -> Asn {
        self.nodes[idx].asn
    }

    /// Outgoing directional links of `idx`.
    pub fn links(&self, idx: NodeIdx) -> &[Link] {
        &self.adj[idx]
    }

    /// The directional link `a → b`, if the ASes are connected.
    pub fn link(&self, a: NodeIdx, b: NodeIdx) -> Option<&Link> {
        self.adj[a].iter().find(|l| l.peer == b)
    }

    fn link_mut(&mut self, a: NodeIdx, b: NodeIdx) -> Option<&mut Link> {
        self.adj[a].iter_mut().find(|l| l.peer == b)
    }

    /// Relationship of `b` as seen from `a` (default, ignoring hybrid
    /// overrides), if connected.
    pub fn rel(&self, a: NodeIdx, b: NodeIdx) -> Option<Relationship> {
        self.link(a, b).map(|l| l.rel)
    }

    /// Total number of undirected links.
    pub fn link_count(&self) -> usize {
        self.adj.iter().map(|v| v.len()).sum::<usize>() / 2
    }

    /// Customers of `idx` (nodes for which `idx` is a provider).
    pub fn customers(&self, idx: NodeIdx) -> impl Iterator<Item = NodeIdx> + '_ {
        self.adj[idx]
            .iter()
            .filter(|l| l.rel == Relationship::Customer)
            .map(|l| l.peer)
    }

    /// Providers of `idx`.
    pub fn providers(&self, idx: NodeIdx) -> impl Iterator<Item = NodeIdx> + '_ {
        self.adj[idx]
            .iter()
            .filter(|l| l.rel == Relationship::Provider)
            .map(|l| l.peer)
    }

    /// Size of the customer cone of `idx` (the AS itself plus all ASes
    /// reachable by repeatedly descending provider→customer edges). Siblings
    /// are not descended.
    pub fn customer_cone_size(&self, idx: NodeIdx) -> usize {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![idx];
        seen[idx] = true;
        let mut n = 0;
        while let Some(x) = stack.pop() {
            n += 1;
            for l in &self.adj[x] {
                if l.rel == Relationship::Customer && !seen[l.peer] {
                    seen[l.peer] = true;
                    stack.push(l.peer);
                }
            }
        }
        n
    }

    /// Structural Oliveira-style classification of `idx` (see Table 1).
    ///
    /// Tier-1s are provider-free transit ASes; among the rest, the customer
    /// cone size separates large ISPs (> 50), small ISPs (2–50) and stubs
    /// (cone of 1, i.e. no customers).
    pub fn as_type(&self, idx: NodeIdx) -> AsType {
        let has_provider = self.providers(idx).next().is_some();
        let cone = self.customer_cone_size(idx);
        if !has_provider && cone > 1 && self.nodes[idx].role == AsRole::Transit {
            return AsType::Tier1;
        }
        match cone {
            1 => AsType::Stub,
            2..=50 => AsType::SmallIsp,
            _ => AsType::LargeIsp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_types::Ipv4;

    fn node(asn: u32) -> AsNode {
        AsNode {
            asn: Asn(asn),
            org: OrgId(asn),
            home_country: CountryId(0),
            presence: vec![CityId(0)],
            role: AsRole::Transit,
            prefixes: vec![Prefix::new(Ipv4::new(10, 0, (asn % 256) as u8, 0), 24)],
        }
    }

    /// p provider of c; x peers with p.
    fn tiny() -> (AsGraph, NodeIdx, NodeIdx, NodeIdx) {
        let mut g = AsGraph::default();
        let p = g.add_node(node(1));
        let c = g.add_node(node(2));
        let x = g.add_node(node(3));
        g.add_link(
            p,
            c,
            Relationship::Customer,
            vec![CityId(0)],
            LinkKind::Normal,
        );
        g.add_link(p, x, Relationship::Peer, vec![CityId(1)], LinkKind::Normal);
        (g, p, c, x)
    }

    #[test]
    fn directional_views_are_mirrored() {
        let (g, p, c, _) = tiny();
        assert_eq!(g.rel(p, c), Some(Relationship::Customer));
        assert_eq!(g.rel(c, p), Some(Relationship::Provider));
        assert_eq!(g.link_count(), 2);
    }

    #[test]
    fn hybrid_override_applies_per_city() {
        let (mut g, p, _, x) = tiny();
        g.set_hybrid(p, x, CityId(2), Relationship::Customer);
        let l = g.link(p, x).unwrap();
        assert_eq!(l.rel_at(CityId(1)), Relationship::Peer);
        assert_eq!(l.rel_at(CityId(2)), Relationship::Customer);
        assert!(l.is_hybrid());
        // Mirrored on the other side.
        let l = g.link(x, p).unwrap();
        assert_eq!(l.rel_at(CityId(2)), Relationship::Provider);
    }

    #[test]
    fn cone_and_type() {
        let (g, p, c, x) = tiny();
        assert_eq!(g.customer_cone_size(p), 2);
        assert_eq!(g.customer_cone_size(c), 1);
        assert_eq!(g.as_type(p), AsType::Tier1); // provider-free with a customer
        assert_eq!(g.as_type(c), AsType::Stub);
        assert_eq!(g.as_type(x), AsType::Stub); // no customers
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn duplicate_link_rejected() {
        let (mut g, p, c, _) = tiny();
        g.add_link(p, c, Relationship::Peer, vec![CityId(0)], LinkKind::Normal);
    }

    #[test]
    #[should_panic(expected = "duplicate ASN")]
    fn duplicate_asn_rejected() {
        let mut g = AsGraph::default();
        g.add_node(node(1));
        g.add_node(node(1));
    }

    #[test]
    fn customers_and_providers_iterators() {
        let (g, p, c, x) = tiny();
        assert_eq!(g.customers(p).collect::<Vec<_>>(), vec![c]);
        assert_eq!(g.providers(c).collect::<Vec<_>>(), vec![p]);
        assert_eq!(g.customers(x).count(), 0);
    }

    #[test]
    fn igp_cost_is_directional() {
        let (mut g, p, c, _) = tiny();
        g.set_igp_cost(p, c, 7);
        assert_eq!(g.link(p, c).unwrap().igp_cost, 7);
        assert_eq!(g.link(c, p).unwrap().igp_cost, 1);
    }
}
