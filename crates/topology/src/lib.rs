#![forbid(unsafe_code)]
// Engine and topology library code must degrade gracefully, never panic on
// data: unwrap/expect are denied outside tests (gate enforced by
// scripts/check.sh).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! AS-level topology substrate.
//!
//! The paper's analyses run against two different views of the Internet:
//!
//! * the **ground truth** — the actual AS graph with its business
//!   relationships and routing-policy quirks (which on the real Internet is
//!   unobservable; here we generate it), and
//! * the **inferred view** — CAIDA-style relationship databases built from
//!   partial BGP feeds (produced by the `ir-inference` crate), against which
//!   measured paths are classified.
//!
//! This crate owns the ground truth: the [`graph::AsGraph`], the
//! [`geo::Geography`] it is embedded in, the [`orgs`] registry (whois + DNS
//! SOA records used for sibling inference), the [`cables`] that confuse
//! relationship models (§6 of the paper), the [`content`] catalog of large
//! providers the passive campaign traceroutes toward, per-AS
//! [`policy::PolicySpec`]s interpreted by the BGP simulator, and the seeded
//! [`gen`]erator that assembles an Internet-like world from all of it. It
//! also provides [`reldb::RelationshipDb`] — the shared representation for
//! *inferred* relationship datasets — and a CAIDA serial-1-style text
//! [`serial`]ization for them.

pub mod arena;
pub mod cables;
pub mod classify;
pub mod content;
pub mod dot;
pub mod gen;
pub mod geo;
pub mod graph;
pub mod orgs;
pub mod policy;
pub mod reldb;
pub mod serial;
pub mod world;

pub use arena::{AsnInterner, TopologyArena};
pub use gen::GeneratorConfig;
pub use graph::{AsGraph, AsNode, AsRole, Link, LinkKind, NodeIdx};
pub use reldb::RelationshipDb;
pub use world::World;
