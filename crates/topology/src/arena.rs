//! Dense AS indexing: the single `Asn ↔ u32` mapping of the workspace.
//!
//! Three layers used to maintain their own ASN→index map (`GrModel`'s
//! `BTreeMap`, `AsGraph`'s `by_asn`, ad-hoc scans of `RelationshipDb`).
//! They now all go through [`AsnInterner`], and the model-computation hot
//! path — one shortest-path pass per destination over the inferred
//! topology — runs on [`TopologyArena`], a CSR (compressed sparse row)
//! adjacency built once per `RelationshipDb` and shared via `Arc` across
//! every per-destination computation, including concurrent ones.

use crate::reldb::RelationshipDb;
use ir_types::{Asn, Relationship};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;

/// Bidirectional `Asn ↔ u32` mapping with O(1) lookup both ways.
///
/// Indices are dense, assigned in insertion order. Built from a sorted
/// source (like [`RelationshipDb::asns`]) the index order equals ASN
/// order, which keeps downstream iteration deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsnInterner {
    asns: Vec<Asn>,
    index: HashMap<Asn, u32>,
}

/// Interns every ASN yielded, in order, skipping duplicates — so
/// `AsnInterner::from_iter(db.asns())` (or `.collect()`) builds the canonical
/// dense mapping.
impl FromIterator<Asn> for AsnInterner {
    fn from_iter<I: IntoIterator<Item = Asn>>(iter: I) -> AsnInterner {
        let mut interner = AsnInterner::default();
        for asn in iter {
            interner.intern(asn);
        }
        interner
    }
}

impl AsnInterner {
    /// The index of `asn`, interning it if new.
    pub fn intern(&mut self, asn: Asn) -> u32 {
        if let Some(&i) = self.index.get(&asn) {
            return i;
        }
        let i =
            u32::try_from(self.asns.len()).unwrap_or_else(|_| panic!("more than u32::MAX ASes"));
        self.asns.push(asn);
        self.index.insert(asn, i);
        i
    }

    /// The index of `asn`, if interned.
    pub fn get(&self, asn: Asn) -> Option<u32> {
        self.index.get(&asn).copied()
    }

    /// The ASN at `idx`. Panics on out-of-range indices.
    pub fn asn(&self, idx: u32) -> Asn {
        self.asns[idx as usize]
    }

    /// Number of interned ASNs.
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// Whether nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// All ASNs in index order.
    pub fn asns(&self) -> &[Asn] {
        &self.asns
    }
}

// The interner serializes as its ASN list; the reverse map is rebuilt.
impl Serialize for AsnInterner {
    fn serialize(&self) -> Value {
        self.asns.serialize()
    }
}

impl Deserialize for AsnInterner {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        let asns: Vec<Asn> = Deserialize::deserialize(v)?;
        Ok(AsnInterner::from_iter(asns))
    }
}

/// CSR adjacency of an inferred relationship topology.
///
/// `neighbors(i)` is the contiguous slice of `(neighbor_index,
/// relationship-of-neighbor-as-seen-from-i)` pairs — one flat allocation
/// for the whole graph, cache-friendly for the BFS/Dijkstra passes that
/// dominate classification time. Build once per [`RelationshipDb`], share
/// via `Arc` across destinations and threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopologyArena {
    interner: AsnInterner,
    /// CSR row offsets; `len() + 1` entries.
    offsets: Vec<u32>,
    /// CSR payload: `(neighbor, rel-of-neighbor-from-row)`.
    neighbors: Vec<(u32, Relationship)>,
}

impl TopologyArena {
    /// Indexes a relationship snapshot. ASN indices follow ascending ASN
    /// order ([`RelationshipDb::asns`] is sorted).
    pub fn build(db: &RelationshipDb) -> TopologyArena {
        let interner = AsnInterner::from_iter(db.asns());
        let n = interner.len();

        // Degree count, then prefix-sum into offsets, then fill.
        // `from_iter(db.asns())` interned every edge endpoint just above.
        let idx = |a: Asn| {
            interner
                .get(a)
                .unwrap_or_else(|| unreachable!("asns() covers every edge endpoint"))
        };
        let mut degree = vec![0u32; n];
        for (a, b, _) in db.iter() {
            degree[idx(a) as usize] += 1;
            degree[idx(b) as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        offsets.push(0);
        for d in &degree {
            total += d;
            offsets.push(total);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut neighbors = vec![(0u32, Relationship::Peer); total as usize];
        for (a, b, rel) in db.iter() {
            let ia = idx(a);
            let ib = idx(b);
            neighbors[cursor[ia as usize] as usize] = (ib, rel);
            cursor[ia as usize] += 1;
            neighbors[cursor[ib as usize] as usize] = (ia, rel.reverse());
            cursor[ib as usize] += 1;
        }
        TopologyArena {
            interner,
            offsets,
            neighbors,
        }
    }

    /// The `Asn ↔ u32` mapping.
    pub fn interner(&self) -> &AsnInterner {
        &self.interner
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.interner.len()
    }

    /// Whether the topology is empty.
    pub fn is_empty(&self) -> bool {
        self.interner.is_empty()
    }

    /// Adjacency row of the AS at `idx`.
    pub fn neighbors(&self, idx: u32) -> &[(u32, Relationship)] {
        &self.neighbors
            [self.offsets[idx as usize] as usize..self.offsets[idx as usize + 1] as usize]
    }

    /// Relationship of `b` as seen from `a`, by index.
    pub fn rel_idx(&self, a: u32, b: u32) -> Option<Relationship> {
        self.neighbors(a)
            .iter()
            .find(|(x, _)| *x == b)
            .map(|(_, r)| *r)
    }

    /// Relationship of `b` as seen from `a`, by ASN.
    pub fn rel(&self, a: Asn, b: Asn) -> Option<Relationship> {
        self.rel_idx(self.interner.get(a)?, self.interner.get(b)?)
    }

    /// Total number of undirected links.
    pub fn link_count(&self) -> usize {
        self.neighbors.len() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> RelationshipDb {
        use Relationship::*;
        let mut db = RelationshipDb::default();
        db.insert(Asn(1), Asn(2), Peer);
        db.insert(Asn(3), Asn(1), Provider); // 1 provider of 3
        db.insert(Asn(30), Asn(3), Sibling);
        db
    }

    #[test]
    fn interner_round_trips_and_is_dense() {
        let i = AsnInterner::from_iter([Asn(5), Asn(9), Asn(5), Asn(2)]);
        assert_eq!(i.len(), 3);
        assert_eq!(i.get(Asn(9)), Some(1));
        assert_eq!(i.asn(2), Asn(2));
        assert_eq!(i.get(Asn(7)), None);
        assert_eq!(i.asns(), &[Asn(5), Asn(9), Asn(2)]);
    }

    #[test]
    fn interner_serde_round_trip() {
        let i = AsnInterner::from_iter([Asn(10), Asn(4), Asn(7)]);
        let back = AsnInterner::deserialize(&i.serialize()).unwrap();
        assert_eq!(back, i);
        assert_eq!(back.get(Asn(4)), Some(1));
    }

    #[test]
    fn arena_matches_db_adjacency() {
        let db = db();
        let arena = TopologyArena::build(&db);
        assert_eq!(arena.len(), 4);
        assert_eq!(arena.link_count(), db.len());
        // Index order follows ascending ASN order.
        assert_eq!(arena.interner().asns(), &[Asn(1), Asn(2), Asn(3), Asn(30)]);
        for (a, b, rel) in db.iter() {
            assert_eq!(arena.rel(a, b), Some(rel), "{a}-{b}");
            assert_eq!(arena.rel(b, a), Some(rel.reverse()), "{b}-{a}");
        }
        assert_eq!(arena.rel(Asn(2), Asn(3)), None);
        assert_eq!(arena.rel(Asn(999), Asn(1)), None);
    }

    #[test]
    fn neighbor_rows_are_complete() {
        let db = db();
        let arena = TopologyArena::build(&db);
        let i1 = arena.interner().get(Asn(1)).unwrap();
        let row: Vec<(Asn, Relationship)> = arena
            .neighbors(i1)
            .iter()
            .map(|&(n, r)| (arena.interner().asn(n), r))
            .collect();
        assert_eq!(row.len(), 2);
        assert!(row.contains(&(Asn(2), Relationship::Peer)));
        assert!(row.contains(&(Asn(3), Relationship::Customer)));
    }

    #[test]
    fn empty_db_builds_empty_arena() {
        let arena = TopologyArena::build(&RelationshipDb::default());
        assert!(arena.is_empty());
        assert_eq!(arena.link_count(), 0);
    }
}
