//! The assembled synthetic world: everything the measurement and analysis
//! pipeline needs, in one place.

use crate::cables::CableMap;
use crate::content::ContentCatalog;
use crate::geo::Geography;
use crate::graph::{AsGraph, NodeIdx};
use crate::orgs::OrgRegistry;
use crate::policy::PolicySpec;
use ir_types::Asn;
use serde::{Deserialize, Serialize};

/// The ground-truth world produced by [`crate::gen`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct World {
    /// Geography the topology is embedded in.
    pub geo: Geography,
    /// The AS graph.
    pub graph: AsGraph,
    /// Organizations, whois, and DNS SOA records.
    pub orgs: OrgRegistry,
    /// Undersea cable systems (the TeleGeography-like side list).
    pub cables: CableMap,
    /// Content providers targeted by the passive campaign.
    pub content: ContentCatalog,
    /// Ground-truth per-AS policy, indexed by [`NodeIdx`].
    pub policies: Vec<PolicySpec>,
}

impl World {
    /// The policy of the AS at `idx`.
    pub fn policy(&self, idx: NodeIdx) -> &PolicySpec {
        &self.policies[idx]
    }

    /// The policy of the AS with number `asn`, if it exists.
    pub fn policy_of(&self, asn: Asn) -> Option<&PolicySpec> {
        self.graph.index_of(asn).map(|i| &self.policies[i])
    }

    /// Sanity checks the invariants the generator promises; used by tests
    /// and debug builds of the experiment harness.
    pub fn validate(&self) -> Result<(), String> {
        if self.policies.len() != self.graph.len() {
            return Err(format!(
                "policy table has {} entries for {} ASes",
                self.policies.len(),
                self.graph.len()
            ));
        }
        for idx in 0..self.graph.len() {
            let node = self.graph.node(idx);
            if node.presence.is_empty() {
                return Err(format!("{} has no point of presence", node.asn));
            }
            if node.prefixes.is_empty() {
                return Err(format!("{} originates no prefix", node.asn));
            }
            if self.orgs.whois(node.asn).is_none() {
                return Err(format!("{} has no whois record", node.asn));
            }
            for l in self.graph.links(idx) {
                if l.cities.is_empty() {
                    return Err(format!(
                        "link {} - {} has no interconnection city",
                        node.asn,
                        self.graph.asn(l.peer)
                    ));
                }
            }
        }
        // Prefixes must not overlap across ASes (keeps IP→AS ground truth
        // unambiguous; the data plane adds deliberate ambiguity separately).
        let mut all: Vec<(ir_types::Prefix, Asn)> = Vec::new();
        for n in self.graph.nodes() {
            for p in &n.prefixes {
                all.push((*p, n.asn));
            }
        }
        all.sort_unstable();
        for w in all.windows(2) {
            let ((a, asn_a), (b, asn_b)) = (w[0], w[1]);
            if asn_a != asn_b && a.covers(&b) {
                return Err(format!("prefix {a} of {asn_a} covers {b} of {asn_b}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::gen::GeneratorConfig;
    use crate::graph::{AsNode, AsRole};
    use ir_types::{Asn, CityId, CountryId, Ipv4, OrgId, Prefix};

    #[test]
    fn generated_worlds_validate() {
        for seed in [1u64, 2, 3] {
            GeneratorConfig::tiny()
                .build(seed)
                .validate()
                .expect("valid world");
        }
    }

    #[test]
    fn validation_catches_missing_policy_rows() {
        let mut w = GeneratorConfig::tiny().build(1);
        w.policies.pop();
        let err = w.validate().unwrap_err();
        assert!(err.contains("policy table"), "{err}");
    }

    #[test]
    fn validation_catches_missing_whois() {
        let mut w = GeneratorConfig::tiny().build(1);
        let node = AsNode {
            asn: Asn(999_999),
            org: OrgId(0),
            home_country: CountryId(0),
            presence: vec![CityId(0)],
            role: AsRole::Enterprise,
            prefixes: vec![Prefix::new(Ipv4::new(11, 255, 0, 0), 24)],
        };
        w.graph.add_node(node);
        w.policies.push(Default::default());
        let err = w.validate().unwrap_err();
        assert!(err.contains("whois"), "{err}");
    }

    #[test]
    fn validation_catches_overlapping_prefixes() {
        let mut w = GeneratorConfig::tiny().build(1);
        // Give a second AS a prefix nested inside the first AS's block.
        let victim = w.graph.node(0).prefixes[0];
        let nested = Prefix::new(victim.addr(64), 26);
        w.graph.node_mut(1).prefixes.push(nested);
        let err = w.validate().unwrap_err();
        assert!(err.contains("covers"), "{err}");
    }

    #[test]
    fn validation_catches_missing_pop_and_prefix() {
        let mut w = GeneratorConfig::tiny().build(1);
        w.graph.node_mut(0).presence.clear();
        assert!(w.validate().unwrap_err().contains("point of presence"));
        let mut w = GeneratorConfig::tiny().build(1);
        w.graph.node_mut(0).prefixes.clear();
        assert!(w.validate().unwrap_err().contains("prefix"));
    }

    #[test]
    fn policy_lookup_by_asn() {
        let w = GeneratorConfig::tiny().build(1);
        let asn = w.graph.asn(3);
        assert!(w.policy_of(asn).is_some());
        assert!(w.policy_of(Asn(123_456_789)).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use crate::gen::GeneratorConfig;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Every seed yields a valid, connected-enough world with the
        /// structural invariants the pipeline relies on.
        #[test]
        fn generator_invariants_across_seeds(seed in 0u64..10_000) {
            let w = GeneratorConfig::tiny().build(seed);
            prop_assert!(w.validate().is_ok());
            // ASNs unique and indexable.
            for idx in 0..w.graph.len() {
                let asn = w.graph.asn(idx);
                prop_assert_eq!(w.graph.index_of(asn), Some(idx));
            }
            // Every link is mirrored with reversed relationships.
            for a in 0..w.graph.len() {
                for l in w.graph.links(a) {
                    let back = w.graph.rel(l.peer, a);
                    prop_assert_eq!(back, Some(l.rel.reverse()));
                }
            }
            // Content deployments point at existing ASes and covered space.
            for p in w.content.providers() {
                for d in &p.deployments {
                    let host = w.graph.index_of(d.host_as);
                    prop_assert!(host.is_some());
                    let host = host.unwrap();
                    prop_assert!(
                        w.graph.node(host).prefixes.iter().any(|pf| pf.covers(&d.prefix))
                    );
                }
            }
        }
    }
}
