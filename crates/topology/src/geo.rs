//! The synthetic world's geography: continents contain countries, countries
//! contain cities, and every AS/interconnection/IP is anchored to a city.

use ir_types::{CityId, Continent, CountryId};
use serde::{Deserialize, Serialize};

/// A country in the synthetic world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Country {
    pub id: CountryId,
    pub continent: Continent,
    /// Cities located in this country.
    pub cities: Vec<CityId>,
    /// ISO-like two-letter code, synthesized ("aa", "ab", …).
    pub code: String,
}

/// A city in the synthetic world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct City {
    pub id: CityId,
    pub country: CountryId,
    /// Whether the city is on a coast and can host undersea-cable landings.
    pub coastal: bool,
    /// Synthesized name ("city0001").
    pub name: String,
}

/// The full geography: lookup tables from ids to records.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Geography {
    countries: Vec<Country>,
    cities: Vec<City>,
}

impl Geography {
    /// Builds a geography with `countries_per_continent` countries on each
    /// continent and `cities_per_country` cities per country. Every third
    /// city (at least one per country) is coastal.
    pub fn build(countries_per_continent: usize, cities_per_country: usize) -> Geography {
        assert!(cities_per_country >= 1, "countries need at least one city");
        let mut geo = Geography::default();
        for continent in Continent::ALL {
            for _ in 0..countries_per_continent {
                let cid = CountryId(geo.countries.len() as u16);
                let mut cities = Vec::with_capacity(cities_per_country);
                for k in 0..cities_per_country {
                    let city_id = CityId(geo.cities.len() as u16);
                    geo.cities.push(City {
                        id: city_id,
                        country: cid,
                        coastal: k % 3 == 0,
                        name: format!("{city_id}"),
                    });
                    cities.push(city_id);
                }
                let n = geo.countries.len();
                geo.countries.push(Country {
                    id: cid,
                    continent,
                    cities,
                    code: format!(
                        "{}{}",
                        (b'a' + (n / 26) as u8) as char,
                        (b'a' + (n % 26) as u8) as char
                    ),
                });
            }
        }
        geo
    }

    /// All countries in id order.
    pub fn countries(&self) -> &[Country] {
        &self.countries
    }

    /// All cities in id order.
    pub fn cities(&self) -> &[City] {
        &self.cities
    }

    /// Country record by id.
    pub fn country(&self, id: CountryId) -> &Country {
        &self.countries[id.0 as usize]
    }

    /// City record by id.
    pub fn city(&self, id: CityId) -> &City {
        &self.cities[id.0 as usize]
    }

    /// Country a city belongs to.
    pub fn country_of(&self, city: CityId) -> CountryId {
        self.city(city).country
    }

    /// Continent a city is on.
    pub fn continent_of(&self, city: CityId) -> Continent {
        self.country(self.city(city).country).continent
    }

    /// Continent a country is on.
    pub fn continent_of_country(&self, country: CountryId) -> Continent {
        self.country(country).continent
    }

    /// Countries on a given continent, in id order.
    pub fn countries_on(&self, continent: Continent) -> impl Iterator<Item = &Country> {
        self.countries
            .iter()
            .filter(move |c| c.continent == continent)
    }

    /// Coastal cities on a given continent (candidate cable landings).
    pub fn coastal_cities_on(&self, continent: Continent) -> Vec<CityId> {
        self.cities
            .iter()
            .filter(|c| c.coastal && self.continent_of(c.id) == continent)
            .map(|c| c.id)
            .collect()
    }

    /// Whether two cities are in the same country.
    pub fn same_country(&self, a: CityId, b: CityId) -> bool {
        self.country_of(a) == self.country_of(b)
    }

    /// Whether two cities are on the same continent.
    pub fn same_continent(&self, a: CityId, b: CityId) -> bool {
        self.continent_of(a) == self.continent_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_counts() {
        let g = Geography::build(3, 4);
        assert_eq!(g.countries().len(), 18);
        assert_eq!(g.cities().len(), 72);
        for country in g.countries() {
            assert_eq!(country.cities.len(), 4);
            // At least one coastal city per country (k = 0 is coastal).
            assert!(country.cities.iter().any(|c| g.city(*c).coastal));
        }
    }

    #[test]
    fn lookups_are_consistent() {
        let g = Geography::build(2, 3);
        for city in g.cities() {
            let country = g.country(city.country);
            assert!(country.cities.contains(&city.id));
            assert_eq!(g.continent_of(city.id), country.continent);
        }
    }

    #[test]
    fn same_country_and_continent() {
        let g = Geography::build(2, 2);
        let c0 = g.countries()[0].cities[0];
        let c1 = g.countries()[0].cities[1];
        let other = g.countries()[1].cities[0];
        assert!(g.same_country(c0, c1));
        assert!(!g.same_country(c0, other));
        assert!(g.same_continent(c0, other)); // countries 0 and 1 are both on Africa
    }

    #[test]
    fn coastal_cities_exist_everywhere() {
        let g = Geography::build(2, 3);
        for continent in Continent::ALL {
            assert!(!g.coastal_cities_on(continent).is_empty());
        }
    }

    #[test]
    fn country_codes_unique() {
        let g = Geography::build(4, 1);
        let mut codes: Vec<_> = g.countries().iter().map(|c| c.code.clone()).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), g.countries().len());
    }
}
