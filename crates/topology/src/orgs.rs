//! Organizations, whois records, and DNS SOA records.
//!
//! §4.2 of the paper identifies sibling ASes (several ASNs run by one
//! organization) by grouping whois **email addresses**, resolving different
//! domains of the same company through **DNS SOA records** (dish.com and
//! dishaccess.tv share the dishnetwork.com authoritative domain), and
//! filtering out addresses hosted at freemail providers or regional Internet
//! registries. This module synthesizes exactly those artifacts so the
//! `ir-inference::siblings` pipeline faces the same precision/recall
//! trade-offs as the real one.

use ir_types::{Asn, CountryId, OrgId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Freemail domains that pollute whois data; sibling inference must filter
/// them (two unrelated ASes registered with hotmail addresses are not
/// siblings).
pub const FREEMAIL_DOMAINS: [&str; 3] = ["hotmail.example", "gmail.example", "mail.example"];

/// RIR-hosted contact domains, likewise filtered.
pub const RIR_DOMAINS: [&str; 3] = ["ripe.example", "arin.example", "apnic.example"];

/// An organization operating one or more ASes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Organization {
    pub id: OrgId,
    /// Display name ("org17").
    pub name: String,
    /// Web domains the organization registers ASes under. Several domains
    /// may map to one authoritative (SOA) domain.
    pub domains: Vec<String>,
    /// The authoritative domain shared by all of the org's domains.
    pub soa_domain: String,
    /// Country of incorporation.
    pub country: CountryId,
}

/// A (simplified) whois record for an ASN — the fields Cai et al. found
/// useful, of which the paper keeps only the email address plus the
/// registered country (used by the Table 3 domestic-path analysis).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhoisRecord {
    pub asn: Asn,
    /// Registered contact email, e.g. "noc@org17-net.example".
    pub email: String,
    /// Organization id string as it appears in whois (not globally unique
    /// across registries, which is why the paper keys on emails).
    pub org_field: String,
    /// Country the ASN is registered in. For multinational ASes whois still
    /// lists a single country — the limitation §6 calls out.
    pub country: CountryId,
}

/// The registry: organizations, per-ASN whois, and DNS SOA records.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OrgRegistry {
    orgs: Vec<Organization>,
    whois: BTreeMap<Asn, WhoisRecord>,
    /// DNS SOA: maps a domain to its authoritative domain.
    soa: BTreeMap<String, String>,
}

impl OrgRegistry {
    /// Registers an organization. Its domains' SOA records are installed.
    pub fn add_org(&mut self, org: Organization) {
        for d in &org.domains {
            self.soa.insert(d.clone(), org.soa_domain.clone());
        }
        self.soa
            .insert(org.soa_domain.clone(), org.soa_domain.clone());
        self.orgs.push(org);
    }

    /// Registers the whois record for an ASN.
    pub fn add_whois(&mut self, rec: WhoisRecord) {
        self.whois.insert(rec.asn, rec);
    }

    /// All organizations.
    pub fn orgs(&self) -> &[Organization] {
        &self.orgs
    }

    /// Organization by id.
    pub fn org(&self, id: OrgId) -> &Organization {
        &self.orgs[id.0 as usize]
    }

    /// Whois record for an ASN, if registered.
    pub fn whois(&self, asn: Asn) -> Option<&WhoisRecord> {
        self.whois.get(&asn)
    }

    /// All whois records in ASN order.
    pub fn whois_records(&self) -> impl Iterator<Item = &WhoisRecord> {
        self.whois.values()
    }

    /// DNS SOA lookup: the authoritative domain for `domain`, if it exists.
    pub fn soa_lookup(&self, domain: &str) -> Option<&str> {
        self.soa.get(domain).map(String::as_str)
    }

    /// Whether `domain` belongs to a freemail provider or an RIR (sibling
    /// inference must ignore such contact addresses).
    pub fn is_shared_mail_domain(domain: &str) -> bool {
        FREEMAIL_DOMAINS.contains(&domain) || RIR_DOMAINS.contains(&domain)
    }
}

/// Extracts the domain part of an email address.
pub fn email_domain(email: &str) -> Option<&str> {
    email
        .split_once('@')
        .map(|(_, d)| d)
        .filter(|d| !d.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> OrgRegistry {
        let mut r = OrgRegistry::default();
        r.add_org(Organization {
            id: OrgId(0),
            name: "org0".into(),
            domains: vec!["dish.example".into(), "dishaccess.example".into()],
            soa_domain: "dishnetwork.example".into(),
            country: CountryId(1),
        });
        r.add_whois(WhoisRecord {
            asn: Asn(100),
            email: "noc@dish.example".into(),
            org_field: "ORG-0".into(),
            country: CountryId(1),
        });
        r.add_whois(WhoisRecord {
            asn: Asn(101),
            email: "peering@dishaccess.example".into(),
            org_field: "ORG-0B".into(),
            country: CountryId(1),
        });
        r
    }

    #[test]
    fn soa_unifies_org_domains() {
        let r = registry();
        assert_eq!(r.soa_lookup("dish.example"), Some("dishnetwork.example"));
        assert_eq!(
            r.soa_lookup("dishaccess.example"),
            Some("dishnetwork.example")
        );
        assert_eq!(
            r.soa_lookup("dishnetwork.example"),
            Some("dishnetwork.example")
        );
        assert_eq!(r.soa_lookup("unrelated.example"), None);
    }

    #[test]
    fn whois_lookup() {
        let r = registry();
        assert_eq!(r.whois(Asn(100)).unwrap().email, "noc@dish.example");
        assert!(r.whois(Asn(999)).is_none());
        assert_eq!(r.whois_records().count(), 2);
    }

    #[test]
    fn email_domain_extraction() {
        assert_eq!(email_domain("a@b.example"), Some("b.example"));
        assert_eq!(email_domain("nodomain"), None);
        assert_eq!(email_domain("trailing@"), None);
    }

    #[test]
    fn shared_domains_flagged() {
        assert!(OrgRegistry::is_shared_mail_domain("hotmail.example"));
        assert!(OrgRegistry::is_shared_mail_domain("ripe.example"));
        assert!(!OrgRegistry::is_shared_mail_domain("dish.example"));
    }
}
