//! Seeded generator for an Internet-like synthetic world.
//!
//! The generator assembles every phenomenon the paper studies into one
//! ground-truth [`World`]:
//!
//! * a transit hierarchy (tier-1 clique → large ISPs → small ISPs → stubs)
//!   with a rich peering mesh near the edge (the part route monitors miss),
//! * geography (ASes live in countries; links interconnect in cities),
//! * sibling organizations with whois/SOA artifacts,
//! * hybrid (per-city) relationships and partial transit,
//! * content providers with on-net and off-net (in-ISP) deployments,
//! * prefix-specific announcement policies at origins,
//! * domestic-path preference,
//! * research & education networks hosting the PEERING-like testbed,
//! * undersea cables, both consortium-owned and independently operated.
//!
//! Everything is a pure function of `(config, seed)`.

use crate::cables::{CableMap, CableOwnership, CableSystem};
use crate::content::{ContentCatalog, ContentProvider, Deployment};
use crate::geo::Geography;
use crate::graph::{AsGraph, AsNode, AsRole, LinkKind, NodeIdx};
use crate::orgs::{OrgRegistry, Organization, WhoisRecord, FREEMAIL_DOMAINS};
use crate::policy::{PolicySpec, TransitScope};
use crate::world::World;
use ir_types::{Asn, CityId, CountryId, Ipv4, OrgId, Prefix, Relationship};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeSet;

/// Tuning knobs for the generator. Defaults produce a world of roughly 700
/// ASes — comparable to the 746 ASes whose decisions the paper observes.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Countries per continent.
    pub countries_per_continent: usize,
    /// Cities per country.
    pub cities_per_country: usize,
    /// Number of tier-1 (provider-free, global) transit ASes.
    pub tier1s: usize,
    /// Number of large (continental) ISPs.
    pub large_isps: usize,
    /// Small (national) ISPs per country.
    pub small_isps_per_country: usize,
    /// Stub ASes (eyeballs + enterprises) per country.
    pub stubs_per_country: usize,
    /// Research & education networks per continent.
    pub education_per_continent: usize,
    /// Content providers (14 in the paper).
    pub content_providers: usize,
    /// Total content hostnames across providers (34 in the paper).
    pub content_hostnames: usize,
    /// Undersea cable systems.
    pub cables: usize,
    /// Fraction of cable systems operated independently (own ASN).
    pub independent_cable_fraction: f64,
    /// Probability that a pair of small ISPs in the same country peer.
    pub edge_peering_prob: f64,
    /// Fraction of multi-city peering links made hybrid (per-city rel).
    pub hybrid_fraction: f64,
    /// Fraction of provider→customer arrangements that are partial transit.
    pub partial_transit_fraction: f64,
    /// Fraction of origins with ≥2 prefixes that announce one selectively.
    pub psp_fraction: f64,
    /// Fraction of edge ASes that prefer domestic paths.
    pub domestic_pref_fraction: f64,
    /// Fraction of transit ASes with a finer-grained neighbor ranking that
    /// deviates from relationship classes.
    pub neighbor_pref_fraction: f64,
    /// Fraction of multi-homed edge ASes whose last provider link is backup.
    pub backup_link_fraction: f64,
    /// Fraction of ASes with BGP loop prevention disabled.
    pub no_loop_prevention_fraction: f64,
    /// Fraction of ASes that filter AS-set (poisoned) announcements.
    pub filters_as_sets_fraction: f64,
    /// Fraction of organizations that operate several sibling ASes.
    pub sibling_org_fraction: f64,
    /// Include the PEERING-like testbed AS homed at university networks.
    pub include_testbed: bool,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            countries_per_continent: 4,
            cities_per_country: 3,
            tier1s: 12,
            large_isps: 40,
            small_isps_per_country: 5,
            stubs_per_country: 20,
            education_per_continent: 3,
            content_providers: 14,
            content_hostnames: 34,
            cables: 10,
            independent_cable_fraction: 0.5,
            edge_peering_prob: 0.25,
            hybrid_fraction: 0.08,
            partial_transit_fraction: 0.05,
            psp_fraction: 0.55,
            domestic_pref_fraction: 0.35,
            neighbor_pref_fraction: 0.10,
            backup_link_fraction: 0.08,
            no_loop_prevention_fraction: 0.03,
            filters_as_sets_fraction: 0.05,
            sibling_org_fraction: 0.12,
            include_testbed: true,
        }
    }
}

impl GeneratorConfig {
    /// A much smaller world for fast unit tests.
    pub fn tiny() -> Self {
        GeneratorConfig {
            countries_per_continent: 2,
            cities_per_country: 2,
            tier1s: 5,
            large_isps: 10,
            small_isps_per_country: 2,
            stubs_per_country: 4,
            education_per_continent: 1,
            content_providers: 4,
            content_hostnames: 8,
            cables: 4,
            ..GeneratorConfig::default()
        }
    }

    /// A tiny world restricted to policies that satisfy `ir-audit`'s
    /// conservative Gao–Rexford convergence certificate: no domestic-path
    /// preference, no neighbor-ranking deltas, no backup links, no sibling
    /// orgs, no loop-prevention opt-outs, and no cable systems (cable
    /// subscriptions carry a +250 preference boost). Hybrid links, partial
    /// transit, selective announcement and AS-set filters stay on — they
    /// restrict routing without reordering preferences, so certification
    /// survives them. Used by the free-order differential suite.
    pub fn certifiably_safe() -> Self {
        GeneratorConfig {
            cables: 0,
            domestic_pref_fraction: 0.0,
            neighbor_pref_fraction: 0.0,
            backup_link_fraction: 0.0,
            no_loop_prevention_fraction: 0.0,
            sibling_org_fraction: 0.0,
            ..GeneratorConfig::tiny()
        }
    }

    /// An internet-scale world of at least 50 000 ASes with a CAIDA-like
    /// degree distribution: a handful of tier-1 hubs whose customer cones
    /// and global footprints give them degrees in the thousands, a middle
    /// tier of continental and national ISPs, and a heavy tail of ~97%
    /// stub ASes with 1–3 providers each. Generation stays O(E): wiring
    /// probes the smaller adjacency side and IGP randomization walks links
    /// by index, so no step is quadratic in hub degree.
    pub fn internet_scale() -> Self {
        Self::internet_scale_sized(50_000)
    }

    /// The internet-scale preset sized to at least `target_ases` ASes
    /// (used by the scale bench to sweep 1k → 50k). The transit backbone
    /// (tier-1s, large ISPs, small ISPs) grows sub-linearly with the
    /// target, and stubs fill the remainder — the same shape real AS-level
    /// snapshots show, where edge growth dominates.
    ///
    /// Two features of the default world are deliberately absent: cable
    /// systems (the cable-operator ASN base at 64 000 sits inside the stub
    /// ASN range once stubs pass 44 000) and the PEERING-like testbed (its
    /// real ASN 47 065 likewise collides with the stub cursor). Both are
    /// paper-experiment furniture, not routing substrate.
    ///
    /// The preset also stays inside `ir-audit`'s Gao–Rexford convergence
    /// certificate (see [`GeneratorConfig::certifiably_safe`]): the
    /// preference-reordering quirks — neighbor-ranking deltas, domestic
    /// preference, backup links, sibling orgs, loop-prevention opt-outs —
    /// are off. Those quirks make convergence *unguaranteed*, and while
    /// every 688-AS paper instance happens to converge anyway, at tens of
    /// thousands of ASes some instances contain live dispute wheels: an
    /// 8k-AS world with the quirks on was measured oscillating for 16 025
    /// rounds (102M activations) before the round cap fired. A preset
    /// whose job is to converge 50k ASes must be safe by construction;
    /// the features that only *restrict* routing (hybrid links, partial
    /// transit, selective announcement, AS-set filters) survive the
    /// certificate and stay on. `ir-audit`'s `internet_scale_certifies`
    /// test pins this contract.
    pub fn internet_scale_sized(target_ases: usize) -> Self {
        let countries_per_continent = (target_ases / 2_000).clamp(2, 25);
        let countries = 6 * countries_per_continent;
        let tier1s = (target_ases / 2_500).clamp(8, 20);
        let large_isps = (target_ases / 250).clamp(20, 200);
        let small_isps_per_country = 8;
        let education_per_continent = 5;
        let content_providers = 14;
        let backbone = tier1s
            + large_isps
            + small_isps_per_country * countries
            + education_per_continent * 6
            + content_providers;
        let stubs_per_country = target_ases
            .saturating_sub(backbone)
            .div_ceil(countries)
            .max(1);
        GeneratorConfig {
            countries_per_continent,
            cities_per_country: 3,
            tier1s,
            large_isps,
            small_isps_per_country,
            stubs_per_country,
            education_per_continent,
            content_providers,
            content_hostnames: 34,
            cables: 0,
            include_testbed: false,
            domestic_pref_fraction: 0.0,
            neighbor_pref_fraction: 0.0,
            backup_link_fraction: 0.0,
            no_loop_prevention_fraction: 0.0,
            sibling_org_fraction: 0.0,
            ..GeneratorConfig::default()
        }
    }

    /// Builds a world from this configuration and a seed.
    ///
    /// ```
    /// use ir_topology::GeneratorConfig;
    ///
    /// let world = GeneratorConfig::tiny().build(42);
    /// assert!(world.validate().is_ok());
    /// // Same seed, same world; different seed, different world.
    /// assert_eq!(world.graph.link_count(), GeneratorConfig::tiny().build(42).graph.link_count());
    /// ```
    pub fn build(&self, seed: u64) -> World {
        Builder::new(self.clone(), seed).build()
    }
}

/// ASN numbering plan, chosen to make roles recognizable in output.
mod asn_plan {
    pub const TIER1_BASE: u32 = 100;
    pub const LARGE_BASE: u32 = 1_000;
    pub const SMALL_BASE: u32 = 5_000;
    pub const EDU_BASE: u32 = 11_000;
    pub const CONTENT_BASE: u32 = 15_000;
    pub const STUB_BASE: u32 = 20_000;
    pub const CABLE_BASE: u32 = 64_000;
}

struct Builder {
    cfg: GeneratorConfig,
    rng: StdRng,
    geo: Geography,
    graph: AsGraph,
    orgs: OrgRegistry,
    cables: CableMap,
    content: ContentCatalog,
    /// (provider, customer) pairs wired so far — used to pick deviations.
    transit_pairs: Vec<(NodeIdx, NodeIdx)>,
    /// (subscriber, cable ASN) pairs: the subscriber bought capacity on the
    /// cable and will prefer it (policy applied in `make_policies`).
    cable_subscriptions: Vec<(NodeIdx, Asn)>,
    next_prefix_block: u32,
}

impl Builder {
    fn new(cfg: GeneratorConfig, seed: u64) -> Builder {
        let geo = Geography::build(cfg.countries_per_continent, cfg.cities_per_country);
        Builder {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            geo,
            graph: AsGraph::default(),
            orgs: OrgRegistry::default(),
            cables: CableMap::default(),
            content: ContentCatalog::default(),
            transit_pairs: Vec::new(),
            cable_subscriptions: Vec::new(),
            next_prefix_block: 0,
        }
    }

    fn build(mut self) -> World {
        let tier1s = self.make_tier1s();
        let larges = self.make_large_isps(&tier1s);
        let smalls = self.make_small_isps(&larges);
        let stubs = self.make_stubs(&smalls, &larges);
        let edus = self.make_education(&larges);
        let contents = self.make_content(&tier1s, &larges, &stubs);
        self.make_cables(&tier1s, &larges);
        if self.cfg.include_testbed {
            self.make_testbed(&edus);
        }
        self.randomize_igp_costs();
        self.make_hybrids();
        let mut policies = self.make_policies(&stubs, &smalls, &contents);
        policies.resize_with(self.graph.len(), PolicySpec::default);
        World {
            geo: self.geo,
            graph: self.graph,
            orgs: self.orgs,
            cables: self.cables,
            content: self.content,
            policies,
        }
    }

    // ---- helpers ------------------------------------------------------

    /// Allocates the next /20 block and carves `n` /24 prefixes out of it.
    fn alloc_prefixes(&mut self, n: usize) -> Vec<Prefix> {
        assert!(n <= 16, "at most 16 /24s per /20 block");
        // Blocks start at 16.0.0.0 and advance by 4096 addresses.
        let base = 0x1000_0000u32 + self.next_prefix_block * 4096;
        self.next_prefix_block += 1;
        (0..n)
            .map(|i| Prefix::new(Ipv4(base + (i as u32) * 256), 24))
            .collect()
    }

    fn random_country(&mut self) -> CountryId {
        let n = self.geo.countries().len();
        CountryId(self.rng.random_range(0..n) as u16)
    }

    fn cities_of_country(&self, c: CountryId) -> Vec<CityId> {
        self.geo.country(c).cities.clone()
    }

    /// Registers an organization + whois for a (possibly multi-AS) org.
    fn register_org(
        &mut self,
        name: &str,
        country: CountryId,
        asns: &[Asn],
        freemail: bool,
    ) -> OrgId {
        let id = OrgId(self.orgs.orgs().len() as u32);
        let soa = format!("{name}-net.example");
        let domains: Vec<String> = (0..asns.len().max(1))
            .map(|i| {
                if i == 0 {
                    format!("{name}.example")
                } else {
                    format!("{name}-{i}.example")
                }
            })
            .collect();
        self.orgs.add_org(Organization {
            id,
            name: name.to_string(),
            domains: domains.clone(),
            soa_domain: soa,
            country,
        });
        for (i, &asn) in asns.iter().enumerate() {
            let email = if freemail {
                format!(
                    "admin{}@{}",
                    asn.value(),
                    FREEMAIL_DOMAINS[i % FREEMAIL_DOMAINS.len()]
                )
            } else {
                format!("noc@{}", domains[i % domains.len()])
            };
            self.orgs.add_whois(WhoisRecord {
                asn,
                email,
                org_field: format!("ORG-{}-{i}", id.0),
                country,
            });
        }
        id
    }

    /// Creates one AS node; whois is registered by the caller via
    /// [`Builder::register_org`].
    fn add_as(
        &mut self,
        asn: Asn,
        org: OrgId,
        home: CountryId,
        presence: Vec<CityId>,
        role: AsRole,
        n_prefixes: usize,
    ) -> NodeIdx {
        let prefixes = self.alloc_prefixes(n_prefixes);
        self.graph.add_node(AsNode {
            asn,
            org,
            home_country: home,
            presence,
            role,
            prefixes,
        })
    }

    /// Interconnects `a` (as the side whose view is `rel`) with `b`,
    /// choosing a city both are present in (extending `a`'s presence with a
    /// PoP if necessary so the invariant "link cities ⊆ both presences"
    /// holds).
    fn connect(&mut self, a: NodeIdx, b: NodeIdx, rel_of_b_from_a: Relationship, kind: LinkKind) {
        let pa: BTreeSet<CityId> = self.graph.node(a).presence.iter().copied().collect();
        let pb: BTreeSet<CityId> = self.graph.node(b).presence.iter().copied().collect();
        let common: Vec<CityId> = pa.intersection(&pb).copied().collect();
        let city = if !common.is_empty() {
            common[self.rng.random_range(0..common.len())]
        } else {
            // `a` builds a PoP in one of `b`'s cities.
            let cities = &self.graph.node(b).presence;
            let city = cities[self.rng.random_range(0..cities.len())];
            self.graph.node_mut(a).presence.push(city);
            city
        };
        // Occasionally interconnect in a second shared city (needed for
        // hybrid relationships to be possible).
        let mut cities = vec![city];
        if common.len() >= 2 && self.rng.random_bool(0.5) {
            let other = common.iter().find(|c| **c != city).copied();
            if let Some(o) = other {
                cities.push(o);
            }
        }
        self.graph.add_link(a, b, rel_of_b_from_a, cities, kind);
        if rel_of_b_from_a == Relationship::Customer {
            self.transit_pairs.push((a, b));
        } else if rel_of_b_from_a == Relationship::Provider {
            self.transit_pairs.push((b, a));
        }
    }

    // ---- population ---------------------------------------------------

    fn make_tier1s(&mut self) -> Vec<NodeIdx> {
        let mut tier1s = Vec::new();
        let mut i = 0usize;
        let mut asn_cursor = asn_plan::TIER1_BASE;
        while tier1s.len() < self.cfg.tier1s {
            // Some tier-1 orgs are sibling groups (Verizon 701/702/703-like):
            // 2–3 ASNs covering different continents.
            let sibling_group = self.rng.random_bool(self.cfg.sibling_org_fraction)
                && self.cfg.tier1s - tier1s.len() >= 3;
            let n_asns = if sibling_group {
                self.rng.random_range(2..=3)
            } else {
                1
            };
            let home = self.random_country();
            let asns: Vec<Asn> = (0..n_asns).map(|k| Asn(asn_cursor + k as u32)).collect();
            asn_cursor += n_asns as u32;
            let org = self.register_org(&format!("tier1org{i}"), home, &asns, false);
            let mut group = Vec::new();
            for &asn in &asns {
                // Global footprint: a city in most countries.
                let mut presence = Vec::new();
                for country in 0..self.geo.countries().len() {
                    if self.rng.random_bool(0.7) {
                        let cities = self.cities_of_country(CountryId(country as u16));
                        presence.push(cities[self.rng.random_range(0..cities.len())]);
                    }
                }
                if presence.is_empty() {
                    presence.push(self.cities_of_country(home)[0]);
                }
                let idx = self.add_as(asn, org, home, presence, AsRole::Transit, 2);
                group.push(idx);
            }
            // Sibling links inside the group.
            for w in group.windows(2) {
                self.connect(w[0], w[1], Relationship::Sibling, LinkKind::Normal);
            }
            tier1s.extend(group);
            i += 1;
        }
        // Full clique of peering among tier-1s (skip pairs already siblings).
        for x in 0..tier1s.len() {
            for y in (x + 1)..tier1s.len() {
                let (a, b) = (tier1s[x], tier1s[y]);
                if self.graph.link(a, b).is_none() {
                    self.connect(a, b, Relationship::Peer, LinkKind::Normal);
                }
            }
        }
        tier1s
    }

    fn make_large_isps(&mut self, tier1s: &[NodeIdx]) -> Vec<NodeIdx> {
        let mut larges = Vec::new();
        let mut asn_cursor = asn_plan::LARGE_BASE;
        let mut i = 0usize;
        while larges.len() < self.cfg.large_isps {
            let sibling_group = self.rng.random_bool(self.cfg.sibling_org_fraction)
                && self.cfg.large_isps - larges.len() >= 2;
            let n_asns = if sibling_group { 2 } else { 1 };
            let home = self.random_country();
            let asns: Vec<Asn> = (0..n_asns).map(|k| Asn(asn_cursor + k as u32)).collect();
            asn_cursor += n_asns as u32;
            let org = self.register_org(&format!("largeorg{i}"), home, &asns, false);
            let mut group = Vec::new();
            for &asn in &asns {
                // Continental footprint: cities across the home continent,
                // sometimes one more continent.
                let continent = self.geo.continent_of_country(home);
                let mut presence = Vec::new();
                for country in self
                    .geo
                    .countries_on(continent)
                    .map(|c| c.id)
                    .collect::<Vec<_>>()
                {
                    if self.rng.random_bool(0.8) {
                        let cities = self.cities_of_country(country);
                        presence.push(cities[self.rng.random_range(0..cities.len())]);
                    }
                }
                if presence.is_empty() {
                    presence.push(self.cities_of_country(home)[0]);
                }
                let idx = self.add_as(asn, org, home, presence, AsRole::Transit, 2);
                group.push(idx);
            }
            for w in group.windows(2) {
                self.connect(w[0], w[1], Relationship::Sibling, LinkKind::Normal);
            }
            // Providers: 1–3 tier-1s.
            for &idx in &group {
                let n_prov = self.rng.random_range(1..=3usize);
                let mut provs: Vec<NodeIdx> = tier1s.to_vec();
                provs.shuffle(&mut self.rng);
                for &p in provs.iter().take(n_prov) {
                    if self.graph.link(idx, p).is_none() {
                        self.connect(p, idx, Relationship::Customer, LinkKind::Normal);
                    }
                }
            }
            larges.extend(group);
            i += 1;
        }
        // Peering among large ISPs, denser within a continent.
        for x in 0..larges.len() {
            for y in (x + 1)..larges.len() {
                let (a, b) = (larges[x], larges[y]);
                if self.graph.link(a, b).is_some() {
                    continue;
                }
                let same = self
                    .geo
                    .continent_of_country(self.graph.node(a).home_country)
                    == self
                        .geo
                        .continent_of_country(self.graph.node(b).home_country);
                let p = if same { 0.30 } else { 0.05 };
                if self.rng.random_bool(p) {
                    self.connect(a, b, Relationship::Peer, LinkKind::Normal);
                }
            }
        }
        larges
    }

    fn make_small_isps(&mut self, larges: &[NodeIdx]) -> Vec<NodeIdx> {
        let mut smalls = Vec::new();
        let mut asn_cursor = asn_plan::SMALL_BASE;
        let countries: Vec<CountryId> = self.geo.countries().iter().map(|c| c.id).collect();
        for home in countries {
            let mut in_country = Vec::new();
            for _ in 0..self.cfg.small_isps_per_country {
                let asn = Asn(asn_cursor);
                asn_cursor += 1;
                let org = self.register_org(&format!("small{}", asn.value()), home, &[asn], false);
                let presence = self.cities_of_country(home);
                let idx = self.add_as(asn, org, home, presence, AsRole::Transit, 1);
                // Providers: 1–2 large ISPs, preferring the same continent.
                let continent = self.geo.continent_of_country(home);
                let mut candidates: Vec<NodeIdx> = larges
                    .iter()
                    .copied()
                    .filter(|&l| {
                        self.geo
                            .continent_of_country(self.graph.node(l).home_country)
                            == continent
                    })
                    .collect();
                if candidates.is_empty() {
                    candidates = larges.to_vec();
                }
                candidates.shuffle(&mut self.rng);
                let n_prov = self.rng.random_range(1..=2usize).min(candidates.len());
                for &p in candidates.iter().take(n_prov) {
                    self.connect(p, idx, Relationship::Customer, LinkKind::Normal);
                }
                in_country.push(idx);
            }
            // The rich peering mesh near the edge: small ISPs in the same
            // country peer with probability `edge_peering_prob`.
            for x in 0..in_country.len() {
                for y in (x + 1)..in_country.len() {
                    if self.rng.random_bool(self.cfg.edge_peering_prob) {
                        self.connect(
                            in_country[x],
                            in_country[y],
                            Relationship::Peer,
                            LinkKind::Normal,
                        );
                    }
                }
            }
            smalls.extend(in_country);
        }
        smalls
    }

    fn make_stubs(&mut self, smalls: &[NodeIdx], larges: &[NodeIdx]) -> Vec<NodeIdx> {
        let mut stubs = Vec::new();
        let mut asn_cursor = asn_plan::STUB_BASE;
        let countries: Vec<CountryId> = self.geo.countries().iter().map(|c| c.id).collect();
        for home in countries {
            let continent = self.geo.continent_of_country(home);
            let local_smalls: Vec<NodeIdx> = smalls
                .iter()
                .copied()
                .filter(|&s| self.graph.node(s).home_country == home)
                .collect();
            let cont_larges: Vec<NodeIdx> = larges
                .iter()
                .copied()
                .filter(|&l| {
                    self.geo
                        .continent_of_country(self.graph.node(l).home_country)
                        == continent
                })
                .collect();
            for k in 0..self.cfg.stubs_per_country {
                let asn = Asn(asn_cursor);
                asn_cursor += 1;
                let role = if k % 10 < 7 {
                    AsRole::Eyeball
                } else {
                    AsRole::Enterprise
                };
                // A sprinkle of freemail whois records pollutes sibling
                // inference exactly as on the real Internet.
                let freemail = self.rng.random_bool(0.05);
                let org =
                    self.register_org(&format!("stub{}", asn.value()), home, &[asn], freemail);
                let cities = self.cities_of_country(home);
                let n_cities = self.rng.random_range(1..=2usize).min(cities.len());
                let mut presence = cities;
                presence.shuffle(&mut self.rng);
                presence.truncate(n_cities);
                let n_pfx = if self.rng.random_bool(0.4) {
                    self.rng.random_range(2..=4)
                } else {
                    1
                };
                let idx = self.add_as(asn, org, home, presence, role, n_pfx);
                // Providers: 1–3, mostly local small ISPs, sometimes a large.
                let n_prov = self.rng.random_range(1..=3usize);
                let mut provs: Vec<NodeIdx> = Vec::new();
                let mut pool = local_smalls.clone();
                pool.shuffle(&mut self.rng);
                provs.extend(pool.into_iter().take(n_prov));
                if (provs.len() < n_prov || self.rng.random_bool(0.3)) && !cont_larges.is_empty() {
                    let l = cont_larges[self.rng.random_range(0..cont_larges.len())];
                    if !provs.contains(&l) {
                        provs.push(l);
                    }
                }
                for p in provs {
                    if self.graph.link(idx, p).is_none() {
                        self.connect(p, idx, Relationship::Customer, LinkKind::Normal);
                    }
                }
                stubs.push(idx);
            }
        }
        stubs
    }

    fn make_education(&mut self, larges: &[NodeIdx]) -> Vec<NodeIdx> {
        let mut edus = Vec::new();
        let mut asn_cursor = asn_plan::EDU_BASE;
        for continent in ir_types::Continent::ALL {
            let countries: Vec<CountryId> =
                self.geo.countries_on(continent).map(|c| c.id).collect();
            for _ in 0..self.cfg.education_per_continent {
                let home = countries[self.rng.random_range(0..countries.len())];
                let asn = Asn(asn_cursor);
                asn_cursor += 1;
                let org = self.register_org(&format!("edu{}", asn.value()), home, &[asn], false);
                let presence = self.cities_of_country(home);
                let idx = self.add_as(asn, org, home, presence, AsRole::Education, 1);
                // Commodity transit from a large ISP.
                let cont_larges: Vec<NodeIdx> = larges
                    .iter()
                    .copied()
                    .filter(|&l| {
                        self.geo
                            .continent_of_country(self.graph.node(l).home_country)
                            == continent
                    })
                    .collect();
                let pool = if cont_larges.is_empty() {
                    larges
                } else {
                    &cont_larges[..]
                };
                let p = pool[self.rng.random_range(0..pool.len())];
                self.connect(p, idx, Relationship::Customer, LinkKind::Normal);
                edus.push(idx);
            }
        }
        // The GREN mesh: education networks peer with each other, including
        // across continents (Internet2–AMPATH-like links that generate the
        // §4.4 violations).
        for x in 0..edus.len() {
            for y in (x + 1)..edus.len() {
                if self.rng.random_bool(0.4) {
                    self.connect(edus[x], edus[y], Relationship::Peer, LinkKind::Normal);
                }
            }
        }
        edus
    }

    fn make_content(
        &mut self,
        tier1s: &[NodeIdx],
        larges: &[NodeIdx],
        stubs: &[NodeIdx],
    ) -> Vec<NodeIdx> {
        let mut contents = Vec::new();
        // Distribute hostnames: the first two providers are Akamai/Netflix-
        // like heavyweights with several hostnames and many off-nets.
        let n = self.cfg.content_providers;
        let mut host_counts = vec![1usize; n];
        let mut remaining = self.cfg.content_hostnames.saturating_sub(n);
        let mut hi = 0usize;
        while remaining > 0 {
            let take = if hi < 2 {
                remaining.min(5)
            } else {
                remaining.min(2)
            };
            host_counts[hi % n] += take;
            remaining -= take;
            hi += 1;
        }
        let eyeballs: Vec<NodeIdx> = stubs
            .iter()
            .copied()
            .filter(|&s| self.graph.node(s).role == AsRole::Eyeball)
            .collect();
        for (i, &host_count) in host_counts.iter().enumerate() {
            let asn = Asn(asn_plan::CONTENT_BASE + i as u32);
            let home = self.random_country();
            let name = format!("content{i}");
            let org = self.register_org(&name, home, &[asn], false);
            // Global-ish presence: a few cities on several continents.
            let mut presence = Vec::new();
            for continent in ir_types::Continent::ALL {
                if self.rng.random_bool(0.6) {
                    let countries: Vec<CountryId> =
                        self.geo.countries_on(continent).map(|c| c.id).collect();
                    let c = countries[self.rng.random_range(0..countries.len())];
                    let cities = self.cities_of_country(c);
                    presence.push(cities[self.rng.random_range(0..cities.len())]);
                }
            }
            if presence.is_empty() {
                presence.push(self.cities_of_country(home)[0]);
            }
            let idx = self.add_as(asn, org, home, presence, AsRole::Content, 4);
            // Transit from 1–2 tier-1s/larges…
            let mut provs: Vec<NodeIdx> = tier1s.iter().chain(larges.iter()).copied().collect();
            provs.shuffle(&mut self.rng);
            for &p in provs.iter().take(self.rng.random_range(1..=2usize)) {
                if self.graph.link(idx, p).is_none() {
                    self.connect(p, idx, Relationship::Customer, LinkKind::Normal);
                }
            }
            // …plus open peering with eyeballs and large ISPs (the edge
            // peering mesh content providers build).
            for &e in &eyeballs {
                if self.rng.random_bool(0.06) && self.graph.link(idx, e).is_none() {
                    self.connect(idx, e, Relationship::Peer, LinkKind::Normal);
                }
            }
            for &l in larges {
                if self.rng.random_bool(0.20) && self.graph.link(idx, l).is_none() {
                    self.connect(idx, l, Relationship::Peer, LinkKind::Normal);
                }
            }
            contents.push(idx);

            // Deployments: on-net (own prefixes) everywhere, off-net caches
            // inside eyeball ISPs for the first two (Akamai/Netflix-like)
            // and occasionally for the rest.
            let own_pfx = self.graph.node(idx).prefixes.clone();
            let mut deployments: Vec<Deployment> = own_pfx
                .iter()
                .map(|p| Deployment {
                    host_as: asn,
                    prefix: *p,
                    offnet: false,
                })
                .collect();
            let n_offnet = if i == 0 {
                self.rng.random_range(18..=24usize)
            } else if i == 1 {
                self.rng.random_range(10..=16usize)
            } else {
                self.rng.random_range(0..=3usize)
            };
            let mut hosts = eyeballs.clone();
            hosts.shuffle(&mut self.rng);
            for &h in hosts.iter().take(n_offnet) {
                // The cache lives inside one of the host ISP's /24s; carve a
                // /26 for the servers (the ISP originates the covering /24).
                // Caches sit in the host's *last* prefix — the service
                // block, which is also the one selective announcement
                // policies apply to (§4.3's enterprise-class prefixes).
                let host_node = self.graph.node(h);
                let base = *host_node
                    .prefixes
                    .last()
                    .unwrap_or_else(|| panic!("host AS {} has no prefix", host_node.asn));
                let cache = Prefix::new(Ipv4(base.base.0 + 64), 26);
                deployments.push(Deployment {
                    host_as: host_node.asn,
                    prefix: cache,
                    offnet: true,
                });
            }
            let hostnames: Vec<String> = (0..host_count)
                .map(|k| {
                    if k == 0 {
                        format!("www.{name}.example")
                    } else {
                        format!("svc{k}.{name}.example")
                    }
                })
                .collect();
            self.content.add(ContentProvider {
                org,
                name,
                hostnames,
                origin_asns: vec![asn],
                deployments,
            });
        }
        contents
    }

    fn make_cables(&mut self, tier1s: &[NodeIdx], larges: &[NodeIdx]) {
        for i in 0..self.cfg.cables {
            // Pick two continents and a coastal landing city on each.
            let continents = {
                let mut cs = ir_types::Continent::ALL.to_vec();
                cs.shuffle(&mut self.rng);
                (cs[0], cs[1])
            };
            let la = self.geo.coastal_cities_on(continents.0);
            let lb = self.geo.coastal_cities_on(continents.1);
            if la.is_empty() || lb.is_empty() {
                continue;
            }
            let landings = vec![
                la[self.rng.random_range(0..la.len())],
                lb[self.rng.random_range(0..lb.len())],
            ];
            if self.rng.random_bool(self.cfg.independent_cable_fraction) {
                // Independently-operated cable: its own ASN; subscriber ISPs
                // (one near each landing) become its customers — the cable
                // provides point-to-point transit between them.
                let asn = Asn(asn_plan::CABLE_BASE + i as u32);
                let home = self.geo.country_of(landings[0]);
                let org = self.register_org(&format!("cable{i}"), home, &[asn], false);
                let idx = self.add_as(asn, org, home, landings.clone(), AsRole::CableOperator, 1);
                let mut subscribers = Vec::new();
                for &landing in &landings {
                    let continent = self.geo.continent_of(landing);
                    let pool: Vec<NodeIdx> = larges
                        .iter()
                        .chain(tier1s.iter())
                        .copied()
                        .filter(|&x| {
                            self.geo
                                .continent_of_country(self.graph.node(x).home_country)
                                == continent
                        })
                        .collect();
                    if pool.is_empty() {
                        continue;
                    }
                    // 1–2 subscribers per landing.
                    for _ in 0..self.rng.random_range(1..=2usize) {
                        let s = pool[self.rng.random_range(0..pool.len())];
                        if s != idx && self.graph.link(idx, s).is_none() {
                            // Make sure the subscriber has a PoP at the landing.
                            if !self.graph.node(s).presence.contains(&landing) {
                                self.graph.node_mut(s).presence.push(landing);
                            }
                            self.connect(idx, s, Relationship::Customer, LinkKind::CableSegment);
                            // Subscribers bought dedicated capacity: they
                            // will prefer the cable for the destinations it
                            // reaches (point-to-point transit economics).
                            self.cable_subscriptions.push((s, asn));
                            subscribers.push(s);
                        }
                    }
                }
                self.cables.add(CableSystem {
                    name: format!("cable{i}"),
                    landings,
                    ownership: CableOwnership::Independent(asn),
                });
            } else {
                // Consortium cable: a direct link between two big ISPs, one
                // near each landing.
                let pool_a: Vec<NodeIdx> = tier1s
                    .iter()
                    .chain(larges.iter())
                    .copied()
                    .filter(|&x| {
                        self.geo
                            .continent_of_country(self.graph.node(x).home_country)
                            == continents.0
                    })
                    .collect();
                let pool_b: Vec<NodeIdx> = tier1s
                    .iter()
                    .chain(larges.iter())
                    .copied()
                    .filter(|&x| {
                        self.geo
                            .continent_of_country(self.graph.node(x).home_country)
                            == continents.1
                    })
                    .collect();
                let (pool_a, pool_b) = if pool_a.is_empty() || pool_b.is_empty() {
                    (tier1s.to_vec(), tier1s.to_vec())
                } else {
                    (pool_a, pool_b)
                };
                let a = pool_a[self.rng.random_range(0..pool_a.len())];
                let b = pool_b[self.rng.random_range(0..pool_b.len())];
                if a != b {
                    for (&x, &landing) in [a, b].iter().zip(landings.iter()) {
                        if !self.graph.node(x).presence.contains(&landing) {
                            self.graph.node_mut(x).presence.push(landing);
                        }
                    }
                    if self.graph.link(a, b).is_none() {
                        self.connect(a, b, Relationship::Peer, LinkKind::CableSegment);
                    }
                    self.cables.add(CableSystem {
                        name: format!("cable{i}"),
                        landings,
                        ownership: CableOwnership::Consortium(vec![
                            self.graph.asn(a),
                            self.graph.asn(b),
                        ]),
                    });
                }
            }
        }
    }

    /// The PEERING-like testbed: one AS homed at 7 university (education)
    /// networks as providers — 6 in one country ("US-like") and 1 elsewhere
    /// ("Brazil-like"), mirroring §3.2.
    fn make_testbed(&mut self, edus: &[NodeIdx]) {
        if edus.is_empty() {
            return;
        }
        let asn = Asn::TESTBED;
        let home = self.graph.node(edus[0]).home_country;
        let org = self.register_org("testbed", home, &[asn], false);
        let presence = vec![self.graph.node(edus[0]).presence[0]];
        let idx = self.add_as(asn, org, home, presence, AsRole::Education, 2);
        // Up to 7 university providers, maximizing country diversity the way
        // the real testbed mixes US schools and a Brazilian one.
        let mut picked: Vec<NodeIdx> = Vec::new();
        let mut seen_countries = BTreeSet::new();
        for &e in edus {
            if picked.len() >= 7 {
                break;
            }
            let c = self.graph.node(e).home_country;
            if seen_countries.insert(c) || picked.len() < 6 {
                picked.push(e);
            }
        }
        for e in picked {
            self.connect(e, idx, Relationship::Customer, LinkKind::Normal);
        }
    }

    fn randomize_igp_costs(&mut self) {
        // Indexed walk instead of a peer-scan per link: `set_igp_cost(a, b)`
        // re-finds `b` in `a`'s adjacency, which is O(Σ deg²) across hubs at
        // internet scale. Iteration (and hence the RNG draw sequence) is
        // unchanged — link order is adjacency order, exactly what the old
        // peer-vec loop walked — so seeded worlds stay bit-identical.
        for a in 0..self.graph.len() {
            for i in 0..self.graph.links(a).len() {
                let cost = self.rng.random_range(1..=10u32);
                self.graph.set_igp_cost_at(a, i, cost);
            }
        }
    }

    /// Turns a fraction of multi-city peering links into hybrid
    /// relationships: peer in one city, customer/provider in another.
    fn make_hybrids(&mut self) {
        let mut candidates: Vec<(NodeIdx, NodeIdx, CityId)> = Vec::new();
        for a in 0..self.graph.len() {
            for l in self.graph.links(a) {
                if l.peer > a && l.rel == Relationship::Peer && l.cities.len() >= 2 {
                    candidates.push((a, l.peer, l.cities[1]));
                }
            }
        }
        for (a, b, city) in candidates {
            if self.rng.random_bool(self.cfg.hybrid_fraction) {
                let rel = if self.rng.random_bool(0.5) {
                    Relationship::Customer
                } else {
                    Relationship::Provider
                };
                self.graph.set_hybrid(a, b, city, rel);
            }
        }
    }

    fn make_policies(
        &mut self,
        stubs: &[NodeIdx],
        smalls: &[NodeIdx],
        contents: &[NodeIdx],
    ) -> Vec<PolicySpec> {
        let mut policies: Vec<PolicySpec> = Vec::new();
        policies.resize_with(self.graph.len(), PolicySpec::default);

        // Universal knobs.
        for policy in policies.iter_mut() {
            policy.no_loop_prevention = self.rng.random_bool(self.cfg.no_loop_prevention_fraction);
            policy.filters_as_sets = self.rng.random_bool(self.cfg.filters_as_sets_fraction);
        }

        // Domestic-path preference at edge ASes (stubs + small ISPs).
        for &idx in stubs.iter().chain(smalls.iter()) {
            if self.rng.random_bool(self.cfg.domestic_pref_fraction) {
                policies[idx].domestic_pref = true;
            }
        }

        // Finer-grained neighbor rankings at transit ASes: deprioritize one
        // customer below peers (a Cogent-like economics quirk) or boost one
        // provider above peers.
        for (idx, policy) in policies.iter_mut().enumerate() {
            if self.graph.node(idx).role != AsRole::Transit {
                continue;
            }
            if !self.rng.random_bool(self.cfg.neighbor_pref_fraction) {
                continue;
            }
            let links = self.graph.links(idx);
            let customers: Vec<Asn> = links
                .iter()
                .filter(|l| l.rel == Relationship::Customer)
                .map(|l| self.graph.asn(l.peer))
                .collect();
            let providers: Vec<Asn> = links
                .iter()
                .filter(|l| l.rel == Relationship::Provider)
                .map(|l| self.graph.asn(l.peer))
                .collect();
            if !customers.is_empty() && self.rng.random_bool(0.6) {
                let c = customers[self.rng.random_range(0..customers.len())];
                policy.neighbor_pref.insert(c, -150); // below peers
            } else if !providers.is_empty() {
                let p = providers[self.rng.random_range(0..providers.len())];
                policy.neighbor_pref.insert(p, 250); // above peers
            }
        }

        // Partial transit on a fraction of provider→customer arrangements.
        let pairs = self.transit_pairs.clone();
        for (provider, customer) in pairs {
            if self.rng.random_bool(self.cfg.partial_transit_fraction) {
                let c_asn = self.graph.asn(customer);
                policies[provider]
                    .partial_transit
                    .insert(c_asn, TransitScope::CustomerRoutesOnly);
            }
        }

        // Backup links: for multi-homed stubs, mark one provider link as
        // backup (lowest preference on the customer side; the provider side
        // keeps it as an ordinary customer link).
        for &idx in stubs {
            let provs: Vec<Asn> = self
                .graph
                .links(idx)
                .iter()
                .filter(|l| l.rel == Relationship::Provider)
                .map(|l| self.graph.asn(l.peer))
                .collect();
            if provs.len() >= 2 && self.rng.random_bool(self.cfg.backup_link_fraction) {
                let backup = provs[provs.len() - 1];
                // Outbound: depreciate the link; inbound: prepend toward it
                // so the provider's customers route around it too.
                policies[idx].neighbor_pref.insert(backup, -300);
                policies[idx].export_prepend.insert(backup, 3);
            }
        }

        // Cable subscribers prefer their cable above ordinary routes for
        // whatever the cable reaches (they paid for the capacity) — this is
        // what puts independently-operated cable ASes on real paths even
        // though they are, relationship-wise, providers.
        for (subscriber, cable_asn) in self.cable_subscriptions.clone() {
            // Not every subscriber prefers the cable for everything it
            // reaches; some keep it for overflow only.
            if self.rng.random_bool(0.6) {
                policies[subscriber].neighbor_pref.insert(cable_asn, 250);
            }
        }

        // Prefix-specific announcement at multi-prefix origins — content
        // providers are the heaviest users (enterprise-class prefixes go to
        // one premium provider only), plus a fraction of multi-prefix stubs.
        let psp_candidates: Vec<NodeIdx> = contents
            .iter()
            .copied()
            .chain(
                stubs
                    .iter()
                    .copied()
                    .filter(|&s| self.graph.node(s).prefixes.len() >= 2),
            )
            .collect();
        for idx in psp_candidates {
            // Content providers are the heaviest users of per-prefix
            // policies (premium service blocks); edge origins less so.
            let p = if contents.contains(&idx) {
                0.9
            } else {
                self.cfg.psp_fraction
            };
            if !self.rng.random_bool(p) {
                continue;
            }
            let neighbors: Vec<Asn> = self
                .graph
                .links(idx)
                .iter()
                .filter(|l| matches!(l.rel, Relationship::Provider | Relationship::Peer))
                .map(|l| self.graph.asn(l.peer))
                .collect();
            if neighbors.len() < 2 {
                continue;
            }
            let prefixes = self.graph.node(idx).prefixes.clone();
            // Restrict the last prefix (content providers: the last two —
            // enterprise-class service blocks) to a strict subset of
            // neighbors.
            let n_restricted = if contents.contains(&idx) && prefixes.len() >= 3 {
                2
            } else {
                1
            };
            for pfx in prefixes.iter().rev().take(n_restricted) {
                // Enterprise-class prefixes go to a single (premium)
                // provider.
                let keep = 1;
                let mut picked = neighbors.clone();
                picked.shuffle(&mut self.rng);
                picked.truncate(keep);
                policies[idx]
                    .selective_announce
                    .insert(*pfx, picked.into_iter().collect());
            }
        }

        policies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        GeneratorConfig::tiny().build(42)
    }

    #[test]
    fn world_validates() {
        let w = world();
        w.validate().expect("generated world is self-consistent");
        assert!(
            w.graph.len() > 50,
            "tiny world still has substance: {}",
            w.graph.len()
        );
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = GeneratorConfig::tiny().build(7);
        let b = GeneratorConfig::tiny().build(7);
        assert_eq!(a.graph.len(), b.graph.len());
        assert_eq!(a.graph.link_count(), b.graph.link_count());
        let asns_a: Vec<Asn> = a.graph.nodes().iter().map(|n| n.asn).collect();
        let asns_b: Vec<Asn> = b.graph.nodes().iter().map(|n| n.asn).collect();
        assert_eq!(asns_a, asns_b);
        // Policies identical too.
        for i in 0..a.graph.len() {
            assert_eq!(format!("{:?}", a.policy(i)), format!("{:?}", b.policy(i)));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratorConfig::tiny().build(1);
        let b = GeneratorConfig::tiny().build(2);
        assert_ne!(a.graph.link_count(), b.graph.link_count());
    }

    #[test]
    fn internet_scale_sizing_meets_target() {
        for target in [1_000usize, 2_500] {
            let cfg = GeneratorConfig::internet_scale_sized(target);
            let w = cfg.build(3);
            assert!(
                w.graph.len() >= target,
                "asked for {target} ASes, got {}",
                w.graph.len()
            );
            // The backbone must stay a small minority: stubs dominate, as
            // in real AS-level snapshots.
            let stubs = w
                .graph
                .nodes()
                .iter()
                .filter(|n| matches!(n.role, AsRole::Eyeball | AsRole::Enterprise))
                .count();
            assert!(stubs * 10 >= w.graph.len() * 8, "{stubs} stubs");
            w.validate()
                .expect("internet-scale world is self-consistent");
        }
    }

    #[test]
    fn internet_scale_degree_distribution_is_heavy_tailed() {
        let w = GeneratorConfig::internet_scale_sized(1_000).build(9);
        let mut degrees: Vec<usize> = (0..w.graph.len()).map(|x| w.graph.links(x).len()).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top = degrees[w.graph.len() / 100].max(degrees[0]);
        let median = degrees[w.graph.len() / 2];
        assert!(
            top >= 20 * median.max(1),
            "hubs should dwarf the median: top {top}, median {median}"
        );
    }

    #[test]
    fn transit_hierarchy_is_connected_upward() {
        let w = world();
        // Every non-tier-1, non-cable AS must have at least one provider or
        // sibling path upward, guaranteeing global reachability under GR.
        for idx in 0..w.graph.len() {
            let n = w.graph.node(idx);
            if n.role == AsRole::CableOperator {
                continue;
            }
            let has_up = w.graph.providers(idx).next().is_some();
            let is_top = w.graph.as_type(idx) == ir_types::AsType::Tier1;
            let has_sibling = w
                .graph
                .links(idx)
                .iter()
                .any(|l| l.rel == Relationship::Sibling);
            assert!(
                has_up || is_top || has_sibling,
                "{} is stranded (role {:?})",
                n.asn,
                n.role
            );
        }
    }

    #[test]
    fn deviations_are_present() {
        let w = GeneratorConfig::default().build(3);
        let any_domestic = w.policies.iter().any(|p| p.domestic_pref);
        let any_psp = w.policies.iter().any(|p| !p.selective_announce.is_empty());
        let any_partial = w.policies.iter().any(|p| !p.partial_transit.is_empty());
        let any_npref = w.policies.iter().any(|p| !p.neighbor_pref.is_empty());
        let any_hybrid = (0..w.graph.len()).any(|i| w.graph.links(i).iter().any(|l| l.is_hybrid()));
        assert!(
            any_domestic && any_psp && any_partial && any_npref,
            "policy deviations seeded"
        );
        assert!(any_hybrid, "hybrid links seeded");
        assert!(
            !w.cables.cable_asns().is_empty(),
            "independent cables exist"
        );
    }

    #[test]
    fn testbed_homed_at_universities() {
        let w = world();
        let idx = w.graph.index_of(Asn::TESTBED).expect("testbed exists");
        let provs: Vec<NodeIdx> = w.graph.providers(idx).collect();
        assert!(!provs.is_empty() && provs.len() <= 7);
        for p in provs {
            assert_eq!(w.graph.node(p).role, AsRole::Education);
        }
    }

    #[test]
    fn content_catalog_matches_config() {
        let cfg = GeneratorConfig::tiny();
        let w = cfg.build(5);
        assert_eq!(w.content.providers().len(), cfg.content_providers);
        assert_eq!(w.content.hostname_count(), cfg.content_hostnames);
        // Off-net deployments exist and are hosted inside eyeball space.
        let offnets: Vec<&Deployment> = w
            .content
            .providers()
            .iter()
            .flat_map(|p| p.deployments.iter().filter(|d| d.offnet))
            .collect();
        assert!(!offnets.is_empty());
        for d in offnets {
            let host = w.graph.index_of(d.host_as).expect("host AS exists");
            assert!(w
                .graph
                .node(host)
                .prefixes
                .iter()
                .any(|p| p.covers(&d.prefix)));
        }
    }

    #[test]
    fn cable_landings_span_continents() {
        let w = world();
        for s in w.cables.systems() {
            let c0 = w.geo.continent_of(s.landings[0]);
            let c1 = w.geo.continent_of(s.landings[1]);
            assert_ne!(c0, c1, "cable {} lands on one continent", s.name);
        }
    }

    #[test]
    fn link_cities_subset_of_presence() {
        let w = world();
        for a in 0..w.graph.len() {
            for l in w.graph.links(a) {
                for c in &l.cities {
                    assert!(
                        w.graph.node(a).presence.contains(c)
                            || w.graph.node(l.peer).presence.contains(c),
                        "link city not in either presence"
                    );
                }
            }
        }
    }

    #[test]
    fn sibling_groups_share_org() {
        let w = GeneratorConfig::default().build(11);
        let mut sib_links = 0;
        for a in 0..w.graph.len() {
            for l in w.graph.links(a) {
                if l.rel == Relationship::Sibling && l.peer > a {
                    sib_links += 1;
                    assert_eq!(w.graph.node(a).org, w.graph.node(l.peer).org);
                }
            }
        }
        assert!(sib_links > 0, "sibling groups generated");
    }
}
