//! CAIDA "serial-1"-style text serialization for relationship databases.
//!
//! Format, one link per line: `<asn>|<asn>|<code>` with `-1` = the first AS
//! is a customer of the second, `0` = peer-to-peer, `1` = sibling. Comment
//! lines start with `#`. This is the interchange format between the
//! inference pipeline and the analysis crates, and lets the repository read
//! real CAIDA files should a user have them.

use crate::reldb::RelationshipDb;
use ir_types::{Asn, EdgeRel, Relationship};
use std::fmt::Write as _;

/// Error from parsing a serial-1 document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSerialError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseSerialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "serial-1 parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseSerialError {}

/// Serializes a database to serial-1 text, deterministically ordered.
///
/// ```
/// use ir_topology::{serial, RelationshipDb};
/// use ir_types::{Asn, Relationship};
///
/// let mut db = RelationshipDb::default();
/// db.insert(Asn(3), Asn(1), Relationship::Provider); // 3 customer of 1
/// let text = serial::to_serial1(&db);
/// assert!(text.contains("3|1|-1"));
/// assert_eq!(serial::from_serial1(&text).unwrap(), db);
/// ```
pub fn to_serial1(db: &RelationshipDb) -> String {
    let mut out = String::from("# synthetic serial-1 relationship snapshot\n");
    let mut lines: Vec<(Asn, Asn, i8)> = Vec::with_capacity(db.len());
    for (a, b, rel) in db.iter() {
        // `rel` is b-from-a; serial-1 lists customer first for c2p.
        let (x, y, code) = match rel {
            Relationship::Provider => (a, b, -1),
            Relationship::Customer => (b, a, -1),
            Relationship::Peer => (a.min(b), a.max(b), 0),
            Relationship::Sibling => (a.min(b), a.max(b), 1),
        };
        lines.push((x, y, code));
    }
    lines.sort_unstable();
    for (x, y, code) in lines {
        // Writing to a String is infallible.
        let _ = writeln!(out, "{}|{}|{}", x.0, y.0, code);
    }
    out
}

/// Parses serial-1 text into a database.
pub fn from_serial1(text: &str) -> Result<RelationshipDb, ParseSerialError> {
    let mut db = RelationshipDb::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('|');
        let err = |m: &str| ParseSerialError {
            line: line_no,
            message: m.to_string(),
        };
        let a: u32 = parts
            .next()
            .ok_or_else(|| err("missing first ASN"))?
            .parse()
            .map_err(|_| err("bad first ASN"))?;
        let b: u32 = parts
            .next()
            .ok_or_else(|| err("missing second ASN"))?
            .parse()
            .map_err(|_| err("bad second ASN"))?;
        let code: i8 = parts
            .next()
            .ok_or_else(|| err("missing relationship code"))?
            .parse()
            .map_err(|_| err("bad relationship code"))?;
        if a == b {
            return Err(err("self link"));
        }
        let edge = EdgeRel::from_caida_code(code)
            .ok_or_else(|| err(&format!("unknown relationship code {code}")))?;
        // serial-1 lists the customer first for c2p links.
        db.insert(Asn(a), Asn(b), edge.from_a());
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> RelationshipDb {
        let mut db = RelationshipDb::default();
        db.insert(Asn(3), Asn(1), Relationship::Provider); // 3 customer of 1
        db.insert(Asn(1), Asn(2), Relationship::Peer);
        db.insert(Asn(4), Asn(5), Relationship::Sibling);
        db
    }

    #[test]
    fn roundtrip() {
        let db = sample_db();
        let text = to_serial1(&db);
        let back = from_serial1(&text).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn serialization_is_deterministic_and_customer_first() {
        let text = to_serial1(&sample_db());
        let body: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(body, vec!["1|2|0", "3|1|-1", "4|5|1"]);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let db = from_serial1("# header\n\n  \n10|20|-1\n").unwrap();
        assert_eq!(db.rel(Asn(10), Asn(20)), Some(Relationship::Provider));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = from_serial1("1|2|0\nbogus").unwrap_err();
        assert_eq!(e.line, 2);
        let e = from_serial1("1|2|7").unwrap_err();
        assert!(e.message.contains("unknown relationship code"));
        let e = from_serial1("5|5|0").unwrap_err();
        assert!(e.message.contains("self link"));
        let e = from_serial1("1|x|0").unwrap_err();
        assert!(e.message.contains("bad second ASN"));
    }
}
