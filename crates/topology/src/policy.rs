//! Ground-truth routing-policy specifications.
//!
//! These are *data* describing how each AS deviates from the plain
//! Gao–Rexford model; the `ir-bgp` crate interprets them when simulating
//! route selection and export. Every deviation class studied by the paper
//! is expressible:
//!
//! | Paper section | Deviation | Field |
//! |---|---|---|
//! | §4.1 | hybrid relationships | per-city overrides on [`crate::graph::Link`] |
//! | §4.1 | partial transit | [`PolicySpec::partial_transit`] |
//! | §4.2 | siblings | sibling edges in the graph (org-driven) |
//! | §4.3 | prefix-specific export at origins | [`PolicySpec::selective_announce`] |
//! | §4.4 | finer-grained neighbor ranking | [`PolicySpec::neighbor_pref`] |
//! | §4.4 | backup links | [`LinkKind::Backup`](crate::graph::LinkKind) |
//! | §4.4 | intradomain tie-breakers / route age | always active in the BGP decision process |
//! | §6 | domestic-path preference | [`PolicySpec::domestic_pref`] |

use ir_types::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How an AS behaves toward one neighbor when acting as its (partial)
/// transit provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransitScope {
    /// Full transit: exports everything GR allows.
    Full,
    /// Partial transit (Giotsas et al.): exports only customer-learned
    /// routes to this neighbor — the neighbor gets regional/cone
    /// reachability, not the full table.
    CustomerRoutesOnly,
}

/// Per-AS policy specification (ground truth).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PolicySpec {
    /// Prefer routes whose AS-level path stays inside the AS's home country
    /// over any route that leaves it, regardless of relationship class
    /// (§6 "Domestic paths"). Applied as a local-pref tier above the
    /// relationship tiers.
    pub domestic_pref: bool,

    /// Explicit neighbor ranking overrides: local-pref *delta* added for
    /// routes learned from this neighbor (positive = more preferred). Models
    /// the finer-than-relationship ranking the paper observes (e.g. the
    /// European network preferring a transit route over a peering route).
    pub neighbor_pref: BTreeMap<Asn, i16>,

    /// Origin-side selective announcement: if a prefix appears here it is
    /// announced **only** to the listed neighbors (§4.3 prefix-specific
    /// policies). Prefixes not listed follow normal GR export.
    pub selective_announce: BTreeMap<Prefix, BTreeSet<Asn>>,

    /// Neighbors that only receive partial transit from this AS.
    pub partial_transit: BTreeMap<Asn, TransitScope>,

    /// BGP loop prevention disabled (a small fraction of ASes; limits
    /// poisoning, §4.4 "Limitations").
    pub no_loop_prevention: bool,

    /// Rejects announcements containing AS-sets (filters poisoned
    /// announcements, §4.4 "Limitations").
    pub filters_as_sets: bool,

    /// Export-side AS-path prepending: extra copies of the own ASN added
    /// when exporting to this neighbor (inbound traffic engineering — the
    /// classic way to depreciate a backup link). A TE mechanism the intro
    /// lists among the things the standard model does not capture.
    pub export_prepend: BTreeMap<Asn, u8>,
}

impl PolicySpec {
    /// Whether `prefix` may be announced to `neighbor` under the origin's
    /// selective-announcement table. `true` when the prefix is unlisted.
    pub fn may_announce(&self, prefix: &Prefix, neighbor: Asn) -> bool {
        match self.selective_announce.get(prefix) {
            Some(allowed) => allowed.contains(&neighbor),
            None => true,
        }
    }

    /// The transit scope this AS grants `neighbor`.
    pub fn transit_scope(&self, neighbor: Asn) -> TransitScope {
        self.partial_transit
            .get(&neighbor)
            .copied()
            .unwrap_or(TransitScope::Full)
    }

    /// Local-pref delta for routes learned from `neighbor`.
    pub fn pref_delta(&self, neighbor: Asn) -> i16 {
        self.neighbor_pref.get(&neighbor).copied().unwrap_or(0)
    }

    /// Extra prepends when exporting to `neighbor`.
    pub fn prepends_to(&self, neighbor: Asn) -> u8 {
        self.export_prepend.get(&neighbor).copied().unwrap_or(0)
    }

    /// Whether this spec equals the plain Gao–Rexford policy.
    pub fn is_plain_gr(&self) -> bool {
        !self.domestic_pref
            && self.neighbor_pref.is_empty()
            && self.selective_announce.is_empty()
            && self.partial_transit.is_empty()
            && self.export_prepend.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_plain_gr() {
        let p = PolicySpec::default();
        assert!(p.is_plain_gr());
        assert!(p.may_announce(&"10.0.0.0/24".parse().unwrap(), Asn(1)));
        assert_eq!(p.transit_scope(Asn(1)), TransitScope::Full);
        assert_eq!(p.pref_delta(Asn(1)), 0);
    }

    #[test]
    fn selective_announce_restricts_only_listed_prefixes() {
        let mut p = PolicySpec::default();
        let pfx: Prefix = "10.0.0.0/24".parse().unwrap();
        let other: Prefix = "10.0.1.0/24".parse().unwrap();
        p.selective_announce.insert(pfx, BTreeSet::from([Asn(5)]));
        assert!(p.may_announce(&pfx, Asn(5)));
        assert!(!p.may_announce(&pfx, Asn(6)));
        assert!(p.may_announce(&other, Asn(6)));
        assert!(!p.is_plain_gr());
    }

    #[test]
    fn export_prepend_lookup() {
        let mut p = PolicySpec::default();
        p.export_prepend.insert(Asn(7), 3);
        assert_eq!(p.prepends_to(Asn(7)), 3);
        assert_eq!(p.prepends_to(Asn(8)), 0);
        assert!(!p.is_plain_gr());
    }

    #[test]
    fn partial_transit_and_pref_delta() {
        let mut p = PolicySpec::default();
        p.partial_transit
            .insert(Asn(9), TransitScope::CustomerRoutesOnly);
        p.neighbor_pref.insert(Asn(9), -50);
        assert_eq!(p.transit_scope(Asn(9)), TransitScope::CustomerRoutesOnly);
        assert_eq!(p.pref_delta(Asn(9)), -50);
        assert_eq!(p.transit_scope(Asn(10)), TransitScope::Full);
    }
}
