//! Schema checks for the committed bench artifacts at the repo root.
//!
//! `BENCH_propagation.json` and `BENCH_scale.json` are written by
//! hand-rolled formatting in the bench binaries (no serde on the write
//! path, to keep the bench dependency-light). These tests re-parse the
//! committed files with serde_json and assert the keys downstream readers
//! (scripts/check.sh, DESIGN.md claims, CI dashboards) rely on — so a
//! format drift in the writer fails here instead of silently producing an
//! artifact nothing can read.

use serde_json::Value;

fn load(name: &str) -> Value {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{name} must be committed at the repo root ({e})"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name} is not valid JSON: {e}"))
}

fn number(v: &Value, path: &str) -> f64 {
    let mut cur = v;
    for key in path.split('.') {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("missing key `{path}` (at `{key}`)"));
    }
    cur.as_f64()
        .unwrap_or_else(|| panic!("key `{path}` is not a number: {cur:?}"))
}

#[test]
fn propagation_json_has_required_keys() {
    let v = load("BENCH_propagation.json");
    assert!(number(&v, "world.ases") > 0.0);
    assert!(number(&v, "world.links") > 0.0);
    for case in [
        "announce",
        "reannounce_poison",
        "withdraw",
        "withdraw_cascade",
    ] {
        for field in [
            "event_ns",
            "sweep_ns",
            "speedup",
            "event_activations",
            "event_imports",
            "sweep_activations",
            "sweep_imports",
        ] {
            assert!(
                number(&v, &format!("cases.{case}.{field}")) >= 0.0,
                "cases.{case}.{field}"
            );
        }
    }
    assert!(number(&v, "universe.prefixes") > 0.0);
    assert!(number(&v, "universe.shapes_computed") > 0.0);
    assert!(number(&v, "universe.speedup") > 0.0);
    // The documented work-parity story: the warm-table cascade activates
    // (nearly) every node in both engines. If the event engine ever learns
    // to do materially less work here, the 1x parity note in the bench
    // header and DESIGN.md is stale — this assertion is the tripwire.
    let ea = number(&v, "cases.withdraw_cascade.event_activations");
    let sa = number(&v, "cases.withdraw_cascade.sweep_activations");
    assert!(
        ea >= sa * 0.5,
        "cascade event activations ({ea}) fell far below sweep ({sa}); \
         update the parity documentation"
    );
}

#[test]
fn scale_json_has_required_keys() {
    let v = load("BENCH_scale.json");
    let tiers = v
        .get("tiers")
        .and_then(Value::as_array)
        .expect("tiers array");
    assert!(tiers.len() >= 4, "need >= 4 tiers, got {}", tiers.len());
    let mut prev_target = 0.0;
    for t in tiers {
        for field in [
            "target",
            "ases",
            "links",
            "converge_ms",
            "routes",
            "ns_per_route",
            "bytes_per_route",
            "intern_hit_rate",
        ] {
            assert!(number(t, field) >= 0.0, "tier field {field}");
        }
        let target = number(t, "target");
        assert!(target > prev_target, "tiers must be ascending");
        prev_target = target;
        assert!(number(t, "ases") >= target, "tier under-sized");
        assert!(number(t, "bytes_per_route") < 120.0);
    }
    assert!(number(tiers.last().unwrap(), "ases") >= 50_000.0);
    let compact = number(&v, "paper_scale_comparison.compact_bytes_per_route");
    let legacy = number(&v, "paper_scale_comparison.legacy_bytes_per_route");
    assert!(
        compact < legacy,
        "compact storage must beat the legacy estimate ({compact} vs {legacy})"
    );
    assert!(number(&v, "paper_scale_comparison.reduction") > 1.0);
}

#[test]
fn hijack_json_has_required_keys() {
    let v = load("BENCH_hijack.json");
    assert!(number(&v, "seed") >= 0.0);
    assert!(
        number(&v, "target") >= 5_000.0,
        "sweep must run at >= 5k ASes"
    );
    assert!(
        number(&v, "ases") >= number(&v, "target"),
        "world under-sized"
    );
    assert!(number(&v, "cells") >= 200.0, "need >= 200 cells total");
    assert_eq!(
        v.get("deterministic"),
        Some(&Value::Bool(true)),
        "same-seed sweeps must render identical bytes"
    );
    let defenses = v
        .get("defenses")
        .and_then(Value::as_array)
        .expect("defenses array");
    let names: Vec<&str> = defenses
        .iter()
        .map(|d| d.get("defense").and_then(Value::as_str).expect("name"))
        .collect();
    for want in ["rov", "enforce-first-as", "peerlock-lite"] {
        assert!(names.contains(&want), "missing defense {want}");
    }
    for d in defenses {
        assert!(number(d, "cells") > 0.0);
        assert!(number(d, "ms_per_cell") > 0.0);
        let curves = d
            .get("curves")
            .and_then(Value::as_array)
            .expect("curves array");
        assert!(curves.len() >= 10, "curves under-populated");
        for c in curves {
            let adoption = number(c, "adoption");
            assert!((0.0..=1.0).contains(&adoption));
            let rates: Vec<f64> = ["legit_rate", "hijack_rate", "disconnect_rate"]
                .iter()
                .map(|f| number(c, f))
                .collect();
            for &r in &rates {
                assert!((0.0..=1.0).contains(&r), "rate out of range: {r}");
            }
            let total: f64 = rates.iter().sum();
            // Each rate is rounded to 6 decimals by the writer, so the
            // partition check tolerates the accumulated rounding.
            assert!(
                (total - 1.0).abs() < 1e-5,
                "outcome rates must partition the world (sum {total})"
            );
        }
        // The headline security claim: ROV at full adoption reduces the
        // origin-forgery capture rate to (essentially) just the attacker.
        if d.get("defense").and_then(Value::as_str) == Some("rov") {
            let rate_at = |attack: &str, adoption: f64| {
                curves
                    .iter()
                    .find(|c| {
                        c.get("attack").and_then(Value::as_str) == Some(attack)
                            && number(c, "adoption") == adoption
                    })
                    .map(|c| number(c, "hijack_rate"))
                    .unwrap_or_else(|| panic!("no {attack} curve at {adoption}"))
            };
            let undefended = rate_at("origin-forgery", 0.0);
            let full = rate_at("origin-forgery", 1.0);
            assert!(
                full < 0.01 && full < undefended,
                "full ROV must blank origin forgery ({undefended} -> {full})"
            );
        }
    }
}

#[test]
fn whatif_json_has_required_keys() {
    let v = load("BENCH_whatif.json");
    assert!(number(&v, "seed") >= 0.0);
    assert!(number(&v, "iters") >= 1.0);
    let tiers = v
        .get("tiers")
        .and_then(Value::as_array)
        .expect("tiers array");
    assert!(tiers.len() >= 3, "need >= 3 tiers, got {}", tiers.len());
    let mut prev_target = 0.0;
    for t in tiers {
        for field in [
            "target",
            "ases",
            "links",
            "base_build_ms",
            "cold_link_ns",
            "warm_link_ns",
            "speedup_link",
            "cold_policy_ns",
            "warm_policy_ns",
            "speedup_policy",
            "warm_queries_per_s",
            "batch_queries_per_s",
            "touched_fraction",
        ] {
            assert!(number(t, field) >= 0.0, "tier field {field}");
        }
        let target = number(t, "target");
        assert!(target > prev_target, "tiers must be ascending");
        prev_target = target;
        assert!(number(t, "ases") >= target, "tier under-sized");
        assert!(number(t, "warm_queries_per_s") > 0.0);
        // The delta-seeding contract, as data: a localized edit must not
        // touch more than a few percent of the internet.
        assert!(
            number(t, "touched_fraction") < 0.05,
            "warm query touched {}% of ASes",
            number(t, "touched_fraction") * 100.0
        );
    }
    // The headline claim: at the 20k tier, answering warm must beat cold
    // recomputation by at least an order of magnitude on both edit kinds.
    let last = tiers.last().unwrap();
    assert!(
        number(last, "target") >= 20_000.0,
        "largest tier must be 20k"
    );
    assert!(
        number(last, "speedup_link") >= 10.0,
        "link-edit speedup regressed below 10x"
    );
    assert!(
        number(last, "speedup_policy") >= 10.0,
        "policy-edit speedup regressed below 10x"
    );
}
