#![forbid(unsafe_code)]
//! Criterion benchmark crate; see `benches/`.
