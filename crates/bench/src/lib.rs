#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Criterion benchmark crate; see `benches/`.
