//! Benchmarks regenerating every *figure* of the paper (Figures 1–3).
//!
//! As with the table benches, each prints its regenerated figure data once
//! so `cargo bench` output doubles as a reproduction transcript.

use criterion::{criterion_group, criterion_main, Criterion};
use ir_experiments::scenario::{Scenario, ScenarioConfig};
use std::hint::black_box;
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::build(ScenarioConfig::tiny(7)))
}

fn bench_fig1(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_fig1::run(s).render());
    let mut g = c.benchmark_group("fig1_refinement_pipeline");
    g.sample_size(10);
    g.bench_function("all_seven_variants", |b| {
        b.iter(|| black_box(ir_experiments::exp_fig1::run(black_box(s))))
    });
    // The single-variant baseline for scaling context.
    g.bench_function("simple_variant_only", |b| {
        b.iter(|| {
            let inputs = s.refine_inputs();
            black_box(inputs.run(&s.inferred, &s.decisions, ir_core::refine::Variant::Simple))
        })
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_fig2::run(s).render());
    c.bench_function("fig2_violation_skew", |b| {
        b.iter(|| black_box(ir_experiments::exp_fig2::run(black_box(s))))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_fig3::run(s).render());
    c.bench_function("fig3_continental_breakdown", |b| {
        b.iter(|| black_box(ir_experiments::exp_fig3::run(black_box(s))))
    });
}

criterion_group!(figures, bench_fig1, bench_fig2, bench_fig3);
criterion_main!(figures);
