//! Propagation-engine head-to-head: the event-driven worklist engine
//! (`PrefixSim`) against the legacy full-sweep oracle (`SweepSim`), on the
//! four shapes every campaign exercises — initial announce-to-fixpoint,
//! incremental poisoned re-announce (the §3.2/§4.4 poisoning-loop shape),
//! announce-then-withdraw from scratch, and the incremental
//! withdraw/re-announce cascade on a warm table.
//!
//! Besides the criterion groups, the run writes `BENCH_propagation.json`
//! at the repo root with direct wall-clock numbers and the event/sweep
//! speedup per case, plus per-case activation/import work counters and
//! the whole-universe batched-vs-per-prefix comparison (shape groups
//! computed, prefixes shared by fan-out), so perf claims are recorded
//! alongside the code.
//!
//! The counters exist to keep the speedup column honest. In particular
//! `withdraw_cascade` compresses to ~1.3–1.5×, and that is *near work
//! parity, not a regression*: on a warm table a withdraw revokes the
//! route at every AS that holds one — all of them — and the re-announce
//! re-installs at all of them, so the event worklist's selectivity has
//! little to skip; both engines do Θ(n·deg) selections per cycle. The
//! counters show it directly — event activations are ~0.55× the sweep's
//! on this case, versus ~0.25–0.3× on the cases where perturbations are
//! local (`reannounce_poison`) or the sweep pays extra settle rounds
//! (`announce`), which is where the 3–5× wins come from.

use criterion::{criterion_group, criterion_main, Criterion};
use ir_bgp::universe::prefix_owners;
use ir_bgp::{ActivationOrder, Announcement, PrefixSim, RoutingUniverse, SimContext, SweepSim};
use ir_topology::{GeneratorConfig, World};
use ir_types::{Asn, Prefix, Timestamp};
use std::hint::black_box;
use std::sync::OnceLock;
use std::time::Instant;

/// Inter-event gap comfortably above the route-age granularity.
const ROUND: u64 = 2 * 90 * 60;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| GeneratorConfig::default().build(7))
}

/// The announced origin: a stub AS, as in the measurement campaigns.
fn origin_prefix() -> (Asn, Prefix) {
    let stub = world()
        .graph
        .nodes()
        .iter()
        .find(|n| n.asn.value() >= 20_000)
        .expect("default world has stubs");
    (stub.asn, stub.prefixes[0])
}

/// First transit hop of some converged multi-hop route — the poison target
/// a §4.4 campaign would pick to force an alternate.
fn poison_target(sim: &PrefixSim<'_>) -> Asn {
    (0..world().graph.len())
        .find_map(|x| {
            let hops = sim.best(x)?.path.sequence_asns();
            if hops.len() >= 2 {
                Some(hops[0])
            } else {
                None
            }
        })
        .expect("some multi-hop route exists")
}

/// One poisoning-loop cycle: poisoned re-announce, then restore.
fn reannounce_cycle(
    announce: &mut dyn FnMut(Announcement, Timestamp),
    origin: Asn,
    prefix: Prefix,
    poison: Asn,
    t: &mut u64,
) {
    *t += ROUND;
    let mut ann = Announcement::plain(origin, prefix);
    ann.poison = vec![poison];
    announce(ann, Timestamp(*t));
    *t += ROUND;
    announce(Announcement::plain(origin, prefix), Timestamp(*t));
}

fn bench_engines(c: &mut Criterion) {
    let w = world();
    let (origin, prefix) = origin_prefix();
    let ctx = SimContext::shared(w);

    let mut g = c.benchmark_group("propagation/announce");
    g.sample_size(25);
    g.bench_function("event", |b| {
        b.iter(|| {
            let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
            black_box(sim.stats())
        })
    });
    g.bench_function("sweep", |b| {
        b.iter(|| {
            let mut sim = SweepSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
            black_box(sim.stats())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("propagation/reannounce_poison");
    g.sample_size(25);
    g.bench_function("event", |b| {
        let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let poison = poison_target(&sim);
        let mut t = 0u64;
        b.iter(|| {
            reannounce_cycle(
                &mut |ann, at| {
                    sim.announce(ann, at);
                },
                origin,
                prefix,
                poison,
                &mut t,
            );
            black_box(sim.clock())
        })
    });
    g.bench_function("sweep", |b| {
        let probe = {
            let mut s = PrefixSim::with_context(ctx.clone(), prefix);
            s.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
            poison_target(&s)
        };
        let mut sim = SweepSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        b.iter(|| {
            reannounce_cycle(
                &mut |ann, at| {
                    sim.announce(ann, at);
                },
                origin,
                prefix,
                probe,
                &mut t,
            );
            black_box(sim.clock())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("propagation/withdraw");
    g.sample_size(25);
    g.bench_function("event", |b| {
        let mut t = 0u64;
        b.iter(|| {
            let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            black_box(sim.stats())
        })
    });
    g.bench_function("sweep", |b| {
        let mut t = 0u64;
        b.iter(|| {
            let mut sim = SweepSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            black_box(sim.stats())
        })
    });
    g.finish();

    // Incremental withdraw/re-announce cascade on a warm table: the
    // torture-suite shape, and the one the bucketed worklist exists for.
    let mut g = c.benchmark_group("propagation/withdraw_cascade");
    g.sample_size(25);
    g.bench_function("event", |b| {
        let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        b.iter(|| {
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            black_box(sim.clock())
        })
    });
    g.bench_function("sweep", |b| {
        let mut sim = SweepSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        b.iter(|| {
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            black_box(sim.clock())
        })
    });
    g.finish();
}

/// Directly timed head-to-head, recorded as JSON. `iters` full repetitions
/// per case; mean nanoseconds reported.
fn timed<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    // One warm-up.
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn write_json(c: &mut Criterion) {
    let w = world();
    let (origin, prefix) = origin_prefix();
    let ctx = SimContext::shared(w);
    let iters: u32 = std::env::var("IR_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);

    let announce_event = timed(iters, || {
        let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        black_box(sim.stats());
    });
    let announce_sweep = timed(iters, || {
        let mut sim = SweepSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        black_box(sim.stats());
    });

    let poison = {
        let mut s = PrefixSim::with_context(ctx.clone(), prefix);
        s.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        poison_target(&s)
    };
    let reannounce_event = {
        let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        timed(iters, || {
            reannounce_cycle(
                &mut |ann, at| {
                    sim.announce(ann, at);
                },
                origin,
                prefix,
                poison,
                &mut t,
            );
        })
    };
    let reannounce_sweep = {
        let mut sim = SweepSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        timed(iters, || {
            reannounce_cycle(
                &mut |ann, at| {
                    sim.announce(ann, at);
                },
                origin,
                prefix,
                poison,
                &mut t,
            );
        })
    };

    let withdraw_event = {
        let mut t = 0u64;
        timed(iters, || {
            let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
        })
    };
    let withdraw_sweep = {
        let mut t = 0u64;
        timed(iters, || {
            let mut sim = SweepSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
        })
    };

    let cascade_event = {
        let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        timed(iters, || {
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
        })
    };
    let cascade_sweep = {
        let mut sim = SweepSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        timed(iters, || {
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
        })
    };

    // Work counters for one representative execution of each case. These
    // travel with the timings so the speedup column is explainable from
    // the JSON alone: a case where event activations approach sweep
    // activations (the warm-table cascade) cannot beat the sweep by
    // much, while a case that activates a small fraction of the nodes
    // should win big.
    type Counts = (usize, usize, usize, usize);
    let delta = |before: ir_bgp::EngineStats, after: ir_bgp::EngineStats| {
        (
            after.activations - before.activations,
            after.imports - before.imports,
        )
    };
    let announce_counts: Counts = {
        let mut e = PrefixSim::with_context(ctx.clone(), prefix);
        e.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut s = SweepSim::with_context(ctx.clone(), prefix);
        s.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let (es, ss) = (e.stats(), s.stats());
        (es.activations, es.imports, ss.activations, ss.imports)
    };
    let reannounce_counts: Counts = {
        let mut e = PrefixSim::with_context(ctx.clone(), prefix);
        e.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let before = e.stats();
        let mut t = 0u64;
        reannounce_cycle(
            &mut |a, at| {
                e.announce(a, at);
            },
            origin,
            prefix,
            poison,
            &mut t,
        );
        let (ea, ei) = delta(before, e.stats());
        let mut s = SweepSim::with_context(ctx.clone(), prefix);
        s.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let before = s.stats();
        let mut t = 0u64;
        reannounce_cycle(
            &mut |a, at| {
                s.announce(a, at);
            },
            origin,
            prefix,
            poison,
            &mut t,
        );
        let (sa, si) = delta(before, s.stats());
        (ea, ei, sa, si)
    };
    let withdraw_counts: Counts = {
        let mut e = PrefixSim::with_context(ctx.clone(), prefix);
        e.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        e.withdraw(Timestamp(ROUND));
        let mut s = SweepSim::with_context(ctx.clone(), prefix);
        s.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        s.withdraw(Timestamp(ROUND));
        let (es, ss) = (e.stats(), s.stats());
        (es.activations, es.imports, ss.activations, ss.imports)
    };
    let cascade_counts: Counts = {
        let mut e = PrefixSim::with_context(ctx.clone(), prefix);
        e.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let before = e.stats();
        e.withdraw(Timestamp(ROUND));
        e.announce(Announcement::plain(origin, prefix), Timestamp(2 * ROUND));
        let (ea, ei) = delta(before, e.stats());
        let mut s = SweepSim::with_context(ctx.clone(), prefix);
        s.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let before = s.stats();
        s.withdraw(Timestamp(ROUND));
        s.announce(Announcement::plain(origin, prefix), Timestamp(2 * ROUND));
        let (sa, si) = delta(before, s.stats());
        (ea, ei, sa, si)
    };

    // Whole-universe convergence: shape-batched vs per-prefix, same result
    // byte for byte. Records how much announcement work fan-out saved.
    let prefixes: Vec<Prefix> = prefix_owners(w).keys().copied().collect();
    let universe_iters = iters.div_ceil(5).max(2);
    let batched_ns = timed(universe_iters, || {
        black_box(RoutingUniverse::compute(w, &prefixes));
    });
    let per_prefix_ns = timed(universe_iters, || {
        black_box(RoutingUniverse::compute_per_prefix_ordered(
            w,
            &prefixes,
            ActivationOrder::default(),
        ));
    });
    let ustats = RoutingUniverse::compute(w, &prefixes).engine_stats();

    let case = |name: &str, event: f64, sweep: f64, counts: Counts| {
        let (ea, ei, sa, si) = counts;
        format!(
            "    \"{name}\": {{\n      \"event_ns\": {event:.0},\n      \
             \"sweep_ns\": {sweep:.0},\n      \"speedup\": {:.2},\n      \
             \"event_activations\": {ea},\n      \"event_imports\": {ei},\n      \
             \"sweep_activations\": {sa},\n      \"sweep_imports\": {si}\n    }}",
            sweep / event
        )
    };
    let json = format!(
        "{{\n  \"world\": {{ \"ases\": {}, \"links\": {}, \"seed\": 7 }},\n  \
         \"iters\": {iters},\n  \"cases\": {{\n{},\n{},\n{},\n{}\n  }},\n  \
         \"universe\": {{\n    \"prefixes\": {},\n    \"shapes_computed\": {},\n    \
         \"prefixes_shared\": {},\n    \"batched_ns\": {batched_ns:.0},\n    \
         \"per_prefix_ns\": {per_prefix_ns:.0},\n    \"speedup\": {:.2}\n  }}\n}}\n",
        w.graph.len(),
        w.graph.link_count(),
        case("announce", announce_event, announce_sweep, announce_counts),
        case(
            "reannounce_poison",
            reannounce_event,
            reannounce_sweep,
            reannounce_counts
        ),
        case("withdraw", withdraw_event, withdraw_sweep, withdraw_counts),
        case(
            "withdraw_cascade",
            cascade_event,
            cascade_sweep,
            cascade_counts
        ),
        prefixes.len(),
        ustats.shapes_computed,
        ustats.prefixes_shared,
        per_prefix_ns / batched_ns,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_propagation.json");
    std::fs::write(path, &json).expect("write BENCH_propagation.json");
    println!("wrote {path}:\n{json}");
    let _ = c;
}

criterion_group!(propagation, bench_engines, write_json);
criterion_main!(propagation);
