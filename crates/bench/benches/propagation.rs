//! Propagation-engine head-to-head: the event-driven worklist engine
//! (`PrefixSim`) against the legacy full-sweep oracle (`SweepSim`), on the
//! four shapes every campaign exercises — initial announce-to-fixpoint,
//! incremental poisoned re-announce (the §3.2/§4.4 poisoning-loop shape),
//! announce-then-withdraw from scratch, and the incremental
//! withdraw/re-announce cascade on a warm table.
//!
//! Besides the criterion groups, the run writes `BENCH_propagation.json`
//! at the repo root with direct wall-clock numbers and the event/sweep
//! speedup per case, plus the whole-universe batched-vs-per-prefix
//! comparison (shape groups computed, prefixes shared by fan-out), so perf
//! claims are recorded alongside the code.

use criterion::{criterion_group, criterion_main, Criterion};
use ir_bgp::universe::prefix_owners;
use ir_bgp::{ActivationOrder, Announcement, PrefixSim, RoutingUniverse, SimContext, SweepSim};
use ir_topology::{GeneratorConfig, World};
use ir_types::{Asn, Prefix, Timestamp};
use std::hint::black_box;
use std::sync::OnceLock;
use std::time::Instant;

/// Inter-event gap comfortably above the route-age granularity.
const ROUND: u64 = 2 * 90 * 60;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| GeneratorConfig::default().build(7))
}

/// The announced origin: a stub AS, as in the measurement campaigns.
fn origin_prefix() -> (Asn, Prefix) {
    let stub = world()
        .graph
        .nodes()
        .iter()
        .find(|n| n.asn.value() >= 20_000)
        .expect("default world has stubs");
    (stub.asn, stub.prefixes[0])
}

/// First transit hop of some converged multi-hop route — the poison target
/// a §4.4 campaign would pick to force an alternate.
fn poison_target(sim: &PrefixSim<'_>) -> Asn {
    (0..world().graph.len())
        .find_map(|x| {
            let hops = sim.best(x)?.path.sequence_asns();
            if hops.len() >= 2 {
                Some(hops[0])
            } else {
                None
            }
        })
        .expect("some multi-hop route exists")
}

/// One poisoning-loop cycle: poisoned re-announce, then restore.
fn reannounce_cycle(
    announce: &mut dyn FnMut(Announcement, Timestamp),
    origin: Asn,
    prefix: Prefix,
    poison: Asn,
    t: &mut u64,
) {
    *t += ROUND;
    let mut ann = Announcement::plain(origin, prefix);
    ann.poison = vec![poison];
    announce(ann, Timestamp(*t));
    *t += ROUND;
    announce(Announcement::plain(origin, prefix), Timestamp(*t));
}

fn bench_engines(c: &mut Criterion) {
    let w = world();
    let (origin, prefix) = origin_prefix();
    let ctx = SimContext::shared(w);

    let mut g = c.benchmark_group("propagation/announce");
    g.sample_size(25);
    g.bench_function("event", |b| {
        b.iter(|| {
            let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
            black_box(sim.stats())
        })
    });
    g.bench_function("sweep", |b| {
        b.iter(|| {
            let mut sim = SweepSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
            black_box(sim.stats())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("propagation/reannounce_poison");
    g.sample_size(25);
    g.bench_function("event", |b| {
        let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let poison = poison_target(&sim);
        let mut t = 0u64;
        b.iter(|| {
            reannounce_cycle(
                &mut |ann, at| {
                    sim.announce(ann, at);
                },
                origin,
                prefix,
                poison,
                &mut t,
            );
            black_box(sim.clock())
        })
    });
    g.bench_function("sweep", |b| {
        let probe = {
            let mut s = PrefixSim::with_context(ctx.clone(), prefix);
            s.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
            poison_target(&s)
        };
        let mut sim = SweepSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        b.iter(|| {
            reannounce_cycle(
                &mut |ann, at| {
                    sim.announce(ann, at);
                },
                origin,
                prefix,
                probe,
                &mut t,
            );
            black_box(sim.clock())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("propagation/withdraw");
    g.sample_size(25);
    g.bench_function("event", |b| {
        let mut t = 0u64;
        b.iter(|| {
            let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            black_box(sim.stats())
        })
    });
    g.bench_function("sweep", |b| {
        let mut t = 0u64;
        b.iter(|| {
            let mut sim = SweepSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            black_box(sim.stats())
        })
    });
    g.finish();

    // Incremental withdraw/re-announce cascade on a warm table: the
    // torture-suite shape, and the one the bucketed worklist exists for.
    let mut g = c.benchmark_group("propagation/withdraw_cascade");
    g.sample_size(25);
    g.bench_function("event", |b| {
        let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        b.iter(|| {
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            black_box(sim.clock())
        })
    });
    g.bench_function("sweep", |b| {
        let mut sim = SweepSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        b.iter(|| {
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            black_box(sim.clock())
        })
    });
    g.finish();
}

/// Directly timed head-to-head, recorded as JSON. `iters` full repetitions
/// per case; mean nanoseconds reported.
fn timed<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    // One warm-up.
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn write_json(c: &mut Criterion) {
    let w = world();
    let (origin, prefix) = origin_prefix();
    let ctx = SimContext::shared(w);
    let iters: u32 = std::env::var("IR_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);

    let announce_event = timed(iters, || {
        let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        black_box(sim.stats());
    });
    let announce_sweep = timed(iters, || {
        let mut sim = SweepSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        black_box(sim.stats());
    });

    let poison = {
        let mut s = PrefixSim::with_context(ctx.clone(), prefix);
        s.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        poison_target(&s)
    };
    let reannounce_event = {
        let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        timed(iters, || {
            reannounce_cycle(
                &mut |ann, at| {
                    sim.announce(ann, at);
                },
                origin,
                prefix,
                poison,
                &mut t,
            );
        })
    };
    let reannounce_sweep = {
        let mut sim = SweepSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        timed(iters, || {
            reannounce_cycle(
                &mut |ann, at| {
                    sim.announce(ann, at);
                },
                origin,
                prefix,
                poison,
                &mut t,
            );
        })
    };

    let withdraw_event = {
        let mut t = 0u64;
        timed(iters, || {
            let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
        })
    };
    let withdraw_sweep = {
        let mut t = 0u64;
        timed(iters, || {
            let mut sim = SweepSim::with_context(ctx.clone(), prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
        })
    };

    let cascade_event = {
        let mut sim = PrefixSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        timed(iters, || {
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
        })
    };
    let cascade_sweep = {
        let mut sim = SweepSim::with_context(ctx.clone(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let mut t = 0u64;
        timed(iters, || {
            t += ROUND;
            sim.withdraw(Timestamp(t));
            t += ROUND;
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
        })
    };

    // Whole-universe convergence: shape-batched vs per-prefix, same result
    // byte for byte. Records how much announcement work fan-out saved.
    let prefixes: Vec<Prefix> = prefix_owners(w).keys().copied().collect();
    let universe_iters = iters.div_ceil(5).max(2);
    let batched_ns = timed(universe_iters, || {
        black_box(RoutingUniverse::compute(w, &prefixes));
    });
    let per_prefix_ns = timed(universe_iters, || {
        black_box(RoutingUniverse::compute_per_prefix_ordered(
            w,
            &prefixes,
            ActivationOrder::default(),
        ));
    });
    let ustats = RoutingUniverse::compute(w, &prefixes).engine_stats();

    let case = |name: &str, event: f64, sweep: f64| {
        format!(
            "    \"{name}\": {{\n      \"event_ns\": {event:.0},\n      \
             \"sweep_ns\": {sweep:.0},\n      \"speedup\": {:.2}\n    }}",
            sweep / event
        )
    };
    let json = format!(
        "{{\n  \"world\": {{ \"ases\": {}, \"links\": {}, \"seed\": 7 }},\n  \
         \"iters\": {iters},\n  \"cases\": {{\n{},\n{},\n{},\n{}\n  }},\n  \
         \"universe\": {{\n    \"prefixes\": {},\n    \"shapes_computed\": {},\n    \
         \"prefixes_shared\": {},\n    \"batched_ns\": {batched_ns:.0},\n    \
         \"per_prefix_ns\": {per_prefix_ns:.0},\n    \"speedup\": {:.2}\n  }}\n}}\n",
        w.graph.len(),
        w.graph.link_count(),
        case("announce", announce_event, announce_sweep),
        case("reannounce_poison", reannounce_event, reannounce_sweep),
        case("withdraw", withdraw_event, withdraw_sweep),
        case("withdraw_cascade", cascade_event, cascade_sweep),
        prefixes.len(),
        ustats.shapes_computed,
        ustats.prefixes_shared,
        per_prefix_ns / batched_ns,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_propagation.json");
    std::fs::write(path, &json).expect("write BENCH_propagation.json");
    println!("wrote {path}:\n{json}");
    let _ = c;
}

criterion_group!(propagation, bench_engines, write_json);
criterion_main!(propagation);
