//! Benchmarks regenerating every *table* of the paper (Tables 1–4 plus the
//! §4.3 validation and §4.4 alternate-route statistics).
//!
//! Each benchmark measures the analysis cost over a prebuilt scenario and
//! prints the regenerated table once, so `cargo bench` output doubles as a
//! reproduction transcript. Absolute numbers come from the synthetic
//! substrate; the shapes are compared against the paper in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use ir_experiments::scenario::{Scenario, ScenarioConfig};
use std::hint::black_box;
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::build(ScenarioConfig::tiny(7)))
}

fn bench_table1(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_table1::run(s).render());
    c.bench_function("table1_probe_distribution", |b| {
        b.iter(|| black_box(ir_experiments::exp_table1::run(black_box(s))))
    });
}

fn bench_table2(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_table2::run(s).render());
    let mut g = c.benchmark_group("table2_magnet");
    g.sample_size(10);
    g.bench_function("magnet_runs_and_attribution", |b| {
        b.iter(|| black_box(ir_experiments::exp_table2::run(black_box(s))))
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_table3::run(s).render());
    c.bench_function("table3_domestic_paths", |b| {
        b.iter(|| black_box(ir_experiments::exp_table3::run(black_box(s))))
    });
}

fn bench_table4(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_table4::run(s).render());
    c.bench_function("table4_undersea_cables", |b| {
        b.iter(|| black_box(ir_experiments::exp_table4::run(black_box(s))))
    });
}

fn bench_alternates(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_alternates::run(s, 30).render());
    let mut g = c.benchmark_group("sec44_alternates");
    g.sample_size(10);
    g.bench_function("discovery_and_order_check", |b| {
        b.iter(|| black_box(ir_experiments::exp_alternates::run(black_box(s), 30)))
    });
    g.finish();
}

fn bench_validation(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_validation::run(s, 10).render());
    let mut g = c.benchmark_group("sec43_validation");
    g.sample_size(10);
    g.bench_function("psp_cases_and_looking_glasses", |b| {
        b.iter(|| black_box(ir_experiments::exp_validation::run(black_box(s), 10)))
    });
    g.finish();
}

criterion_group!(
    tables,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_table4,
    bench_alternates,
    bench_validation
);
criterion_main!(tables);
