//! Security scenario sweep benchmark: the Monte-Carlo adoption grid from
//! `ir-scenarios` run on an internet-scale world, one sweep per defense
//! (ROV, enforce-first-AS, peerlock-lite) over the attack ladder. Records
//! sweep throughput (ms/cell), proves same-seed determinism by rendering
//! each sweep twice and comparing bytes, and emits the per-(defense,
//! attack, adoption) outcome-rate curves — the repo's canonical "what
//! does partial adoption buy" artifact.
//!
//! Results land in `BENCH_hijack.json` at the repo root (validated by
//! `tests/bench_schema.rs`). Run with `cargo bench --bench hijack`
//! (release); `IR_BENCH_TARGET` overrides the world size (default 5000).

use ir_bgp::ActivationOrder;
use ir_scenarios::{run_sweep, sweep_to_csv, AttackKind, DefenseKind, SweepConfig, SweepRow};
use ir_topology::GeneratorConfig;
use std::time::Instant;

const FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];
const TRIALS: usize = 5;

fn attacks() -> Vec<AttackKind> {
    vec![
        AttackKind::OriginForgery,
        AttackKind::SubprefixHijack,
        AttackKind::ForgedOrigin {
            stealth: true,
            poison: vec![],
        },
    ]
}

struct DefenseResult {
    defense: &'static str,
    cells: usize,
    sweep_ms: f64,
    rows: Vec<SweepRow>,
}

fn mean_rates(rows: &[SweepRow], attack: &str, adoption: f64) -> (f64, f64, f64) {
    let cells: Vec<&SweepRow> = rows
        .iter()
        .filter(|r| r.attack == attack && r.adoption == adoption)
        .collect();
    let n = cells.len().max(1) as f64;
    (
        cells.iter().map(|r| r.legit_rate()).sum::<f64>() / n,
        cells.iter().map(|r| r.hijack_rate()).sum::<f64>() / n,
        cells.iter().map(|r| r.disconnect_rate()).sum::<f64>() / n,
    )
}

fn main() {
    let seed = 7u64;
    let target: usize = std::env::var("IR_BENCH_TARGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5_000);
    let t0 = Instant::now();
    let world = GeneratorConfig::internet_scale_sized(target).build(seed);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "world: {} ASes {} links ({build_ms:.0} ms)",
        world.graph.len(),
        world.graph.link_count()
    );

    let mut deterministic = true;
    let mut results = Vec::new();
    for defense in [
        DefenseKind::Rov,
        DefenseKind::EnforceFirstAs,
        DefenseKind::PeerlockLite,
    ] {
        let config = SweepConfig {
            seed,
            fractions: FRACTIONS.to_vec(),
            trials: TRIALS,
            attacks: attacks(),
            defense,
            order: ActivationOrder::WaveExact,
        };
        let t1 = Instant::now();
        let rows = run_sweep(&world, &config);
        let sweep_ms = t1.elapsed().as_secs_f64() * 1e3;
        // Same-seed determinism: a second full run must render identical
        // bytes, or the Monte-Carlo layer has a scheduling leak.
        let same = sweep_to_csv(&rows) == sweep_to_csv(&run_sweep(&world, &config));
        deterministic &= same;
        println!(
            "defense {:<16} {} cells in {sweep_ms:.0} ms ({:.1} ms/cell){}",
            defense.name(),
            rows.len(),
            sweep_ms / rows.len().max(1) as f64,
            if same { "" } else { "  (NON-DETERMINISTIC)" }
        );
        results.push(DefenseResult {
            defense: defense.name(),
            cells: rows.len(),
            sweep_ms,
            rows,
        });
    }
    assert!(deterministic, "same-seed sweeps rendered different bytes");

    let defense_json: Vec<String> = results
        .iter()
        .map(|r| {
            let curves: Vec<String> = attacks()
                .iter()
                .flat_map(|attack| {
                    FRACTIONS.iter().map(move |&adoption| {
                        let (legit, hijack, disconnect) =
                            mean_rates(&r.rows, attack.name(), adoption);
                        format!(
                            "        {{ \"attack\": \"{}\", \"adoption\": {adoption}, \
                             \"legit_rate\": {legit:.6}, \"hijack_rate\": {hijack:.6}, \
                             \"disconnect_rate\": {disconnect:.6} }}",
                            attack.name()
                        )
                    })
                })
                .collect();
            format!(
                "    {{\n      \"defense\": \"{}\",\n      \"cells\": {},\n      \
                 \"sweep_ms\": {:.1},\n      \"ms_per_cell\": {:.2},\n      \
                 \"curves\": [\n{}\n      ]\n    }}",
                r.defense,
                r.cells,
                r.sweep_ms,
                r.sweep_ms / r.cells.max(1) as f64,
                curves.join(",\n")
            )
        })
        .collect();
    let total_cells: usize = results.iter().map(|r| r.cells).sum();
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"target\": {target},\n  \"ases\": {},\n  \
         \"links\": {},\n  \"build_ms\": {build_ms:.1},\n  \"cells\": {total_cells},\n  \
         \"trials\": {TRIALS},\n  \"deterministic\": true,\n  \"defenses\": [\n{}\n  ]\n}}\n",
        world.graph.len(),
        world.graph.link_count(),
        defense_json.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hijack.json");
    std::fs::write(path, &json).expect("write BENCH_hijack.json");
    println!("wrote {path}");
}
