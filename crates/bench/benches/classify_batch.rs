//! Parallel-classification benches for the arena refactor.
//!
//! Measures the three costs the `TopologyArena` redesign targets:
//!
//! * `arena_build` — indexing a `RelationshipDb` into the CSR arena (paid
//!   once per topology instead of once per model and per route set);
//! * `classify_sequential` vs `classify_batch` — per-decision
//!   classification one-by-one against the rayon fan-out over the same
//!   shared `&Classifier` (identical verdicts; see the `arena_equiv`
//!   equivalence tests);
//! * `routes_cold` — a full three-phase model computation on the arena
//!   adjacency, the kernel under every cache miss.

use criterion::{criterion_group, criterion_main, Criterion};
use ir_core::classify::{Classifier, ClassifyConfig};
use ir_experiments::scenario::{Scenario, ScenarioConfig};
use ir_topology::TopologyArena;
use std::hint::black_box;
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::build(ScenarioConfig::tiny(7)))
}

fn bench_arena_build(c: &mut Criterion) {
    let s = scenario();
    c.bench_function("arena_build", |b| {
        b.iter(|| black_box(TopologyArena::build(&s.inferred)))
    });
}

fn bench_classify(c: &mut Criterion) {
    let s = scenario();
    let mut g = c.benchmark_group("classify");
    g.bench_function("sequential", |b| {
        b.iter(|| {
            let cl = Classifier::new(&s.inferred, ClassifyConfig::default());
            let verdicts: Vec<_> = s.decisions.iter().map(|d| cl.classify(d)).collect();
            black_box(verdicts)
        })
    });
    g.bench_function("batch", |b| {
        b.iter(|| {
            let cl = Classifier::new(&s.inferred, ClassifyConfig::default());
            black_box(cl.classify_batch(&s.decisions))
        })
    });
    // Warm-cache variants isolate the per-decision cost from the
    // per-destination model computations.
    let warm = Classifier::new(&s.inferred, ClassifyConfig::default());
    warm.classify_batch(&s.decisions);
    g.bench_function("batch_warm", |b| {
        b.iter(|| black_box(warm.classify_batch(&s.decisions)))
    });
    g.finish();
}

fn bench_routes_cold(c: &mut Criterion) {
    let s = scenario();
    let cl = Classifier::new(&s.inferred, ClassifyConfig::default());
    let model = cl.model();
    let dests: Vec<_> = s.decisions.iter().map(|d| d.dest).take(32).collect();
    c.bench_function("routes_cold", |b| {
        b.iter(|| {
            for &d in &dests {
                black_box(model.routes_to(d));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_arena_build,
    bench_classify,
    bench_routes_cold
);
criterion_main!(benches);
