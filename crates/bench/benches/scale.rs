//! Memory-budgeted scale sweep of the compact route storage: converges a
//! single stub prefix on `internet_scale_sized` worlds of 1k, 5k, 20k and
//! 50k ASes and records ns/route and bytes/route per tier, plus a
//! compact-vs-legacy bytes/route comparison at the ~700-AS paper scale.
//! Results land in `BENCH_scale.json` at the repo root (validated by
//! `tests/bench_schema.rs`), keeping the tentpole's memory claim recorded
//! alongside the code.
//!
//! The legacy estimator deliberately favors the old layout: it charges
//! every slot `size_of::<Option<Route>>()` and every stored path only its
//! exact element bytes (no `Vec`/`BTreeSet` over-allocation, no allocator
//! headers), so the reported reduction is a floor, not a cherry-pick.
//!
//! Run with `cargo bench --bench scale` (release). `IR_BENCH_SAMPLES`
//! controls timing repetitions (default 5). The 50k tier is skipped in
//! debug builds — an unoptimized sweep takes minutes and measures nothing.

use ir_bgp::{Announcement, PrefixSim, Route};
use ir_topology::GeneratorConfig;
use ir_types::{Asn, Timestamp};
use std::hint::black_box;
use std::time::Instant;

/// Mean nanoseconds over `iters` runs, after one warm-up.
fn timed<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Heap bytes a materialized [`Route`]'s path occupies, counted at exact
/// element size — the under-estimate keeping the legacy comparison honest.
fn path_heap_bytes(r: &Route) -> usize {
    use ir_bgp::Segment;
    r.path
        .segments()
        .iter()
        .map(|s| {
            std::mem::size_of::<Segment>()
                + match s {
                    Segment::Seq(v) => v.len() * std::mem::size_of::<Asn>(),
                    Segment::Set(set) => set.len() * std::mem::size_of::<Asn>(),
                }
        })
        .sum()
}

struct Tier {
    target: usize,
    ases: usize,
    links: usize,
    build_ms: f64,
    converge_ms: f64,
    rounds: usize,
    activations: usize,
    imports: usize,
    routes: usize,
    ns_per_route: f64,
    bytes_per_route: f64,
    arena_bytes: usize,
    intern_hit_rate: f64,
}

fn run_tier(target: usize, seed: u64, iters: u32) -> Tier {
    let t0 = Instant::now();
    let world = GeneratorConfig::internet_scale_sized(target).build(seed);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let stub = world
        .graph
        .nodes()
        .iter()
        .rev()
        .find(|n| !n.prefixes.is_empty())
        .expect("world has an origin");
    let (origin, prefix) = (stub.asn, stub.prefixes[0]);

    let converge_ns = timed(iters, || {
        let mut sim = PrefixSim::new(&world, prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        black_box(sim.clock());
    });
    let mut sim = PrefixSim::new(&world, prefix);
    let conv = sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
    assert!(conv.converged, "{target}-AS tier did not converge");
    let mem = sim.stats().memory;
    Tier {
        target,
        ases: world.graph.len(),
        links: world.graph.link_count(),
        build_ms,
        converge_ms: converge_ns / 1e6,
        rounds: conv.rounds,
        activations: conv.activations,
        imports: conv.imports,
        routes: mem.routes,
        ns_per_route: converge_ns / mem.routes.max(1) as f64,
        bytes_per_route: mem.bytes_per_route(),
        arena_bytes: mem.arena_bytes,
        intern_hit_rate: mem.intern_hit_rate(),
    }
}

/// Compact vs legacy storage for the same converged state at paper scale.
/// Legacy kept `Option<Route>` per best slot and per adj-RIB-in session
/// slot; its byte count is reconstructed from the materialized routes the
/// compact engine still hands out, so both sides describe identical
/// routing.
fn paper_scale_comparison(seed: u64) -> (usize, f64, f64) {
    let world = GeneratorConfig::default().build(seed);
    let stub = world
        .graph
        .nodes()
        .iter()
        .find(|n| n.asn.value() >= 20_000)
        .expect("paper world has stubs");
    let (origin, prefix) = (stub.asn, stub.prefixes[0]);
    let mut sim = PrefixSim::new(&world, prefix);
    sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
    let mem = sim.stats().memory;
    let compact = mem.bytes_per_route();

    let n = world.graph.len();
    let slot = std::mem::size_of::<Option<Route>>();
    let rib_slots: usize = (0..n).map(|x| world.graph.links(x).len()).sum();
    let mut legacy = (n + rib_slots) * slot;
    for x in 0..n {
        // `candidates` materializes every adj-RIB-in entry plus the local
        // origination; the best route is one of the rib entries, so its
        // path heap is charged once more to mirror the old duplicated
        // `Vec<Option<Route>>` best column.
        for r in sim.candidates(x) {
            legacy += path_heap_bytes(&r);
        }
        if let Some(r) = sim.best(x) {
            legacy += path_heap_bytes(&r);
        }
    }
    (
        world.graph.len(),
        compact,
        legacy as f64 / mem.routes.max(1) as f64,
    )
}

fn main() {
    let seed = 7u64;
    let iters: u32 = std::env::var("IR_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let targets: &[usize] = if cfg!(debug_assertions) {
        &[1_000, 5_000, 20_000]
    } else {
        &[1_000, 5_000, 20_000, 50_000]
    };

    let mut tiers = Vec::new();
    for &target in targets {
        let tier = run_tier(target, seed, iters);
        println!(
            "tier {:>6}: {} ASes {} links | build {:.0} ms, converge {:.1} ms | \
             {} routes, {:.1} ns/route, {:.1} B/route (arena {} B, hit rate {:.0}%)",
            target,
            tier.ases,
            tier.links,
            tier.build_ms,
            tier.converge_ms,
            tier.routes,
            tier.ns_per_route,
            tier.bytes_per_route,
            tier.arena_bytes,
            tier.intern_hit_rate * 100.0
        );
        tiers.push(tier);
    }

    let (paper_ases, compact_bpr, legacy_bpr) = paper_scale_comparison(seed);
    println!(
        "paper scale ({paper_ases} ASes): {compact_bpr:.1} B/route compact vs \
         {legacy_bpr:.1} B/route legacy ({:.1}x)",
        legacy_bpr / compact_bpr
    );

    let tier_json: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                "    {{\n      \"target\": {},\n      \"ases\": {},\n      \
                 \"links\": {},\n      \"build_ms\": {:.1},\n      \
                 \"converge_ms\": {:.3},\n      \"rounds\": {},\n      \
                 \"activations\": {},\n      \"imports\": {},\n      \
                 \"routes\": {},\n      \"ns_per_route\": {:.1},\n      \
                 \"bytes_per_route\": {:.1},\n      \"arena_bytes\": {},\n      \
                 \"intern_hit_rate\": {:.3}\n    }}",
                t.target,
                t.ases,
                t.links,
                t.build_ms,
                t.converge_ms,
                t.rounds,
                t.activations,
                t.imports,
                t.routes,
                t.ns_per_route,
                t.bytes_per_route,
                t.arena_bytes,
                t.intern_hit_rate
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"iters\": {iters},\n  \"tiers\": [\n{}\n  ],\n  \
         \"paper_scale_comparison\": {{\n    \"ases\": {paper_ases},\n    \
         \"compact_bytes_per_route\": {compact_bpr:.1},\n    \
         \"legacy_bytes_per_route\": {legacy_bpr:.1},\n    \
         \"reduction\": {:.2}\n  }}\n}}\n",
        tier_json.join(",\n"),
        legacy_bpr / compact_bpr,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, &json).expect("write BENCH_scale.json");
    println!("wrote {path}");
}
