//! What-if serving benchmark: warm (converge-once, fork + seeded
//! reconvergence) versus cold (announce from scratch, then apply the same
//! edit) on `internet_scale_sized` worlds of 1k, 5k and 20k ASes. Records
//! per-tier query latencies, the warm/cold speedup for a link edit and a
//! policy edit, sustained queries/s (sequential and rayon-batched), and
//! the fraction of ASes a warm query actually touches — the observable
//! form of the delta-seeding contract ("cost scales with how far the edit
//! propagates, not with the size of the internet").
//!
//! Results land in `BENCH_whatif.json` at the repo root (validated by
//! `tests/bench_schema.rs`). Run with `cargo bench --bench whatif`
//! (release); `IR_BENCH_SAMPLES` controls timing repetitions (default 5).

use ir_bgp::{Announcement, Delta, PrefixSim, SimContext, WhatIfEngine, WhatIfQuery};
use ir_topology::GeneratorConfig;
use ir_types::Timestamp;
use std::hint::black_box;
use std::time::Instant;

/// Mean nanoseconds over `iters` runs, after one warm-up.
fn timed<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

struct Tier {
    target: usize,
    ases: usize,
    links: usize,
    base_build_ms: f64,
    cold_link_ns: f64,
    warm_link_ns: f64,
    cold_policy_ns: f64,
    warm_policy_ns: f64,
    warm_queries_per_s: f64,
    batch_queries_per_s: f64,
    touched_fraction: f64,
}

fn run_tier(target: usize, seed: u64, iters: u32) -> Tier {
    let world = GeneratorConfig::internet_scale_sized(target).build(seed);
    let stub = world
        .graph
        .nodes()
        .iter()
        .rev()
        .find(|n| !n.prefixes.is_empty())
        .expect("world has an origin");
    let (origin, prefix) = (stub.asn, stub.prefixes[0]);

    // Localized edit targets: a high-index (edge-of-the-internet) node's
    // uplink, away from the origin — the kind of edit whose blast radius
    // is a handful of ASes out of tens of thousands.
    let g = &world.graph;
    let t = (0..g.len())
        .rev()
        .find(|&x| !g.links(x).is_empty() && g.asn(x) != origin)
        .expect("world has a linked node");
    let (t_asn, t_peer) = (g.asn(t), g.asn(g.links(t)[0].peer));
    let link_edit = Delta::LinkDown {
        a: t_asn,
        b: t_peer,
    };
    let policy_edit = Delta::NeighborPref {
        of: t_asn,
        neighbor: t_peer,
        delta: Some(-500),
    };

    let t0 = Instant::now();
    let engine = WhatIfEngine::new(&world, &[prefix]);
    let base_build_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(engine.base_converged(), "{target}-AS base did not converge");

    let q_link = WhatIfQuery::single(prefix, link_edit.clone());
    let q_policy = WhatIfQuery::single(prefix, policy_edit.clone());

    let warm_link_ns = timed(iters, || {
        let _ = black_box(engine.query(&q_link));
    });
    let warm_policy_ns = timed(iters, || {
        let _ = black_box(engine.query(&q_policy));
    });

    // Cold baseline: what answering the same question costs without the
    // resident engine — converge the prefix from scratch, then apply the
    // edit (exactly what the batch universe layer would redo per edit).
    let ctx = SimContext::shared(&world);
    let cold = |delta: &Delta| {
        let mut sim = PrefixSim::with_context(ctx.fork(), prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        sim.apply_delta(delta, Timestamp(60));
        black_box(sim.clock());
    };
    let cold_link_ns = timed(iters, || cold(&link_edit));
    let cold_policy_ns = timed(iters, || cold(&policy_edit));

    // Sustained throughput: sequential mean of the two query kinds, and a
    // rayon-batched fan-out of 64 independent queries.
    let warm_mean_ns = (warm_link_ns + warm_policy_ns) / 2.0;
    let batch: Vec<WhatIfQuery> = (0..64)
        .map(|i| {
            if i % 2 == 0 {
                q_link.clone()
            } else {
                q_policy.clone()
            }
        })
        .collect();
    let batch_ns = timed(iters, || {
        black_box(engine.query_batch(&batch));
    });

    let answer = engine.query(&q_link).expect("prefix resident");
    let touched_fraction = answer.stats.activations as f64 / world.graph.len() as f64;

    Tier {
        target,
        ases: world.graph.len(),
        links: world.graph.link_count(),
        base_build_ms,
        cold_link_ns,
        warm_link_ns,
        cold_policy_ns,
        warm_policy_ns,
        warm_queries_per_s: 1e9 / warm_mean_ns,
        batch_queries_per_s: batch.len() as f64 * 1e9 / batch_ns,
        touched_fraction,
    }
}

fn main() {
    let seed = 7u64;
    let iters: u32 = std::env::var("IR_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let targets: &[usize] = &[1_000, 5_000, 20_000];

    let mut tiers = Vec::new();
    for &target in targets {
        let tier = run_tier(target, seed, iters);
        println!(
            "tier {:>6}: {} ASes {} links | base {:.0} ms | link {:.0} µs warm vs \
             {:.0} µs cold ({:.0}x) | policy {:.0} µs warm vs {:.0} µs cold ({:.0}x) | \
             {:.0} q/s seq, {:.0} q/s batched | {:.2}% ASes touched",
            target,
            tier.ases,
            tier.links,
            tier.base_build_ms,
            tier.warm_link_ns / 1e3,
            tier.cold_link_ns / 1e3,
            tier.cold_link_ns / tier.warm_link_ns,
            tier.warm_policy_ns / 1e3,
            tier.cold_policy_ns / 1e3,
            tier.cold_policy_ns / tier.warm_policy_ns,
            tier.warm_queries_per_s,
            tier.batch_queries_per_s,
            tier.touched_fraction * 100.0
        );
        tiers.push(tier);
    }

    let tier_json: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                "    {{\n      \"target\": {},\n      \"ases\": {},\n      \
                 \"links\": {},\n      \"base_build_ms\": {:.1},\n      \
                 \"cold_link_ns\": {:.0},\n      \"warm_link_ns\": {:.0},\n      \
                 \"speedup_link\": {:.2},\n      \"cold_policy_ns\": {:.0},\n      \
                 \"warm_policy_ns\": {:.0},\n      \"speedup_policy\": {:.2},\n      \
                 \"warm_queries_per_s\": {:.0},\n      \
                 \"batch_queries_per_s\": {:.0},\n      \
                 \"touched_fraction\": {:.5}\n    }}",
                t.target,
                t.ases,
                t.links,
                t.base_build_ms,
                t.cold_link_ns,
                t.warm_link_ns,
                t.cold_link_ns / t.warm_link_ns,
                t.cold_policy_ns,
                t.warm_policy_ns,
                t.cold_policy_ns / t.warm_policy_ns,
                t.warm_queries_per_s,
                t.batch_queries_per_s,
                t.touched_fraction
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"iters\": {iters},\n  \"tiers\": [\n{}\n  ]\n}}\n",
        tier_json.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_whatif.json");
    std::fs::write(path, &json).expect("write BENCH_whatif.json");
    println!("wrote {path}");
}
