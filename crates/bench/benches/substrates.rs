//! Microbenchmarks of the substrates everything else stands on: world
//! generation, BGP convergence, the valley-free model computation,
//! relationship inference, traceroute, and IP→AS conversion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ir_bgp::{Announcement, PrefixSim, RoutingUniverse};
use ir_core::grmodel::GrModel;
use ir_dataplane::{AddressPlan, OriginTable, TraceConfig, Tracer};
use ir_inference::feeds::{self, FeedConfig};
use ir_inference::relinfer::{infer_relationships, InferConfig};
use ir_inference::SiblingGroups;
use ir_topology::{GeneratorConfig, World};
use ir_types::{Asn, Prefix, Timestamp};
use std::hint::black_box;
use std::sync::OnceLock;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| GeneratorConfig::tiny().build(7))
}

fn universe() -> &'static RoutingUniverse {
    static U: OnceLock<RoutingUniverse> = OnceLock::new();
    U.get_or_init(|| RoutingUniverse::compute_all(world()))
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("generator");
    g.sample_size(20);
    g.bench_function("tiny_world", |b| {
        b.iter(|| black_box(GeneratorConfig::tiny().build(black_box(7))))
    });
    g.bench_function("paper_world", |b| {
        b.iter(|| black_box(GeneratorConfig::default().build(black_box(7))))
    });
    g.finish();
}

fn bench_bgp_convergence(c: &mut Criterion) {
    let w = world();
    let stub = w
        .graph
        .nodes()
        .iter()
        .find(|n| n.asn.value() >= 20_000)
        .unwrap();
    let (origin, prefix) = (stub.asn, stub.prefixes[0]);
    let mut g = c.benchmark_group("bgp");
    g.bench_function("single_prefix_convergence", |b| {
        b.iter(|| {
            let mut sim = PrefixSim::new(w, prefix);
            sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
            black_box(sim.best(0))
        })
    });
    g.bench_function("poisoned_reconvergence", |b| {
        let mut sim = PrefixSim::new(w, prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let first_hop = (0..w.graph.len())
            .find_map(|x| sim.best(x).and_then(|r| r.learned_from))
            .unwrap();
        let mut t = 0u64;
        b.iter(|| {
            t += 5400;
            let mut ann = Announcement::plain(origin, prefix);
            ann.poison = vec![first_hop];
            sim.announce(ann, Timestamp(t));
            t += 5400;
            sim.announce(Announcement::plain(origin, prefix), Timestamp(t));
            black_box(sim.clock())
        })
    });
    g.sample_size(10);
    let prefixes: Vec<Prefix> = w.graph.nodes().iter().map(|n| n.prefixes[0]).collect();
    g.bench_function(BenchmarkId::new("universe_compute", prefixes.len()), |b| {
        b.iter(|| black_box(RoutingUniverse::compute(w, &prefixes)))
    });
    g.finish();
}

fn bench_grmodel(c: &mut Criterion) {
    let w = world();
    let vantages = feeds::pick_vantages(w, &FeedConfig::default(), 7);
    let feed = feeds::extract_feed(w, universe(), &vantages);
    let paths: Vec<&[Asn]> = feed.paths().collect();
    let db = infer_relationships(paths, &InferConfig::default());
    let model = GrModel::new(&db);
    let dest = w.content.providers()[0].origin_asns[0];
    let mut g = c.benchmark_group("grmodel");
    g.bench_function("index_topology", |b| {
        b.iter(|| black_box(GrModel::new(black_box(&db))))
    });
    g.bench_function("routes_to_one_destination", |b| {
        b.iter(|| black_box(model.routes_to(black_box(dest))))
    });
    g.finish();
}

fn bench_inference(c: &mut Criterion) {
    let w = world();
    let vantages = feeds::pick_vantages(w, &FeedConfig::default(), 7);
    let feed = feeds::extract_feed(w, universe(), &vantages);
    let mut g = c.benchmark_group("inference");
    g.sample_size(20);
    g.bench_function("relationships_from_feed", |b| {
        b.iter(|| {
            let paths: Vec<&[Asn]> = feed.paths().collect();
            black_box(infer_relationships(paths, &InferConfig::default()))
        })
    });
    g.bench_function("sibling_groups_from_whois", |b| {
        b.iter(|| black_box(SiblingGroups::infer(black_box(&w.orgs))))
    });
    g.finish();
}

fn bench_dataplane(c: &mut Criterion) {
    let w = world();
    let u = universe();
    let plan = AddressPlan::build(w);
    let tracer = Tracer::new(w, u, &plan, TraceConfig::default(), 7);
    let table = OriginTable::from_universe(u);
    let src = w
        .graph
        .nodes()
        .iter()
        .find(|n| n.asn.value() >= 20_000)
        .unwrap()
        .asn;
    let dst = w.content.providers()[0].deployments[0].server_ip();
    let tr = tracer.run(src, dst);
    let mut g = c.benchmark_group("dataplane");
    g.bench_function("traceroute", |b| {
        b.iter(|| black_box(tracer.run(black_box(src), black_box(dst))))
    });
    g.bench_function("ip2as_conversion", |b| {
        b.iter(|| black_box(ir_dataplane::as_path_of(black_box(&tr), black_box(&table))))
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_generator,
    bench_bgp_convergence,
    bench_grmodel,
    bench_inference,
    bench_dataplane
);
criterion_main!(substrates);
