//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each group varies one methodological knob, measures the analysis cost,
//! and prints the resulting Best/Short percentage so the *effect* of the
//! choice is visible alongside its price:
//!
//! * `short_rule` — Short as "≤ model shortest" (our default; measured
//!   paths can beat a partial topology) vs strict equality (DESIGN.md §5);
//! * `psp_criteria` — criterion 1 vs criterion 2 (the paper's
//!   aggressive-vs-conservative trade-off);
//! * `refinements` — each refinement in isolation;
//! * `vantage_count` — how collector coverage changes inferred-topology
//!   size (the visibility driver behind most unexplained decisions);
//! * `clique_candidates` — sensitivity of relationship inference to the
//!   clique-seed pool size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ir_bgp::RoutingUniverse;
use ir_core::classify::{Category, Classifier, ClassifyConfig, PspCriterion};
use ir_experiments::scenario::{Scenario, ScenarioConfig};
use ir_inference::feeds::{self, FeedConfig};
use ir_inference::relinfer::{infer_relationships, InferConfig};
use ir_types::Asn;
use std::hint::black_box;
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::build(ScenarioConfig::tiny(7)))
}

fn best_short_pct(cfg: ClassifyConfig<'_>) -> f64 {
    let s = scenario();
    let c = Classifier::new(&s.inferred, cfg);
    c.breakdown(&s.decisions).pct(Category::BestShort)
}

fn bench_short_rule(c: &mut Criterion) {
    let s = scenario();
    eprintln!(
        "short rule: lenient (≤) Best/Short = {:.1}% | strict (=) Best/Short = {:.1}%",
        best_short_pct(ClassifyConfig::default()),
        best_short_pct(ClassifyConfig {
            strict_short: true,
            ..ClassifyConfig::default()
        }),
    );
    let mut g = c.benchmark_group("ablation_short_rule");
    g.bench_function("lenient", |b| {
        b.iter(|| {
            let cl = Classifier::new(&s.inferred, ClassifyConfig::default());
            black_box(cl.breakdown(&s.decisions))
        })
    });
    g.bench_function("strict", |b| {
        b.iter(|| {
            let cfg = ClassifyConfig {
                strict_short: true,
                ..ClassifyConfig::default()
            };
            let cl = Classifier::new(&s.inferred, cfg);
            black_box(cl.breakdown(&s.decisions))
        })
    });
    g.finish();
}

fn bench_psp_criteria(c: &mut Criterion) {
    let s = scenario();
    let c1 = ClassifyConfig {
        psp: Some((PspCriterion::One, &s.feed)),
        ..ClassifyConfig::default()
    };
    let c2 = ClassifyConfig {
        psp: Some((PspCriterion::Two, &s.feed)),
        ..ClassifyConfig::default()
    };
    eprintln!(
        "psp criteria: none = {:.1}% | criterion 1 = {:.1}% | criterion 2 = {:.1}% Best/Short",
        best_short_pct(ClassifyConfig::default()),
        best_short_pct(c1),
        best_short_pct(c2),
    );
    let mut g = c.benchmark_group("ablation_psp");
    g.sample_size(20);
    g.bench_function("criterion1", |b| {
        b.iter(|| {
            let cl = Classifier::new(&s.inferred, c1);
            black_box(cl.breakdown(&s.decisions))
        })
    });
    g.bench_function("criterion2", |b| {
        b.iter(|| {
            let cl = Classifier::new(&s.inferred, c2);
            black_box(cl.breakdown(&s.decisions))
        })
    });
    g.finish();
}

fn bench_refinements(c: &mut Criterion) {
    let s = scenario();
    let sibs_only = ClassifyConfig {
        siblings: Some(&s.siblings),
        ..ClassifyConfig::default()
    };
    let complex_only = ClassifyConfig {
        complex: Some(&s.complex),
        ..ClassifyConfig::default()
    };
    eprintln!(
        "refinements alone: none = {:.1}% | +sibs = {:.1}% | +complex = {:.1}% Best/Short",
        best_short_pct(ClassifyConfig::default()),
        best_short_pct(sibs_only),
        best_short_pct(complex_only),
    );
    let mut g = c.benchmark_group("ablation_refinements");
    g.bench_function("siblings_only", |b| {
        b.iter(|| {
            let cl = Classifier::new(&s.inferred, sibs_only);
            black_box(cl.breakdown(&s.decisions))
        })
    });
    g.bench_function("complex_only", |b| {
        b.iter(|| {
            let cl = Classifier::new(&s.inferred, complex_only);
            black_box(cl.breakdown(&s.decisions))
        })
    });
    g.finish();
}

fn bench_vantage_count(c: &mut Criterion) {
    let s = scenario();
    let universe = RoutingUniverse::compute_all(&s.world);
    let mut g = c.benchmark_group("ablation_vantages");
    g.sample_size(10);
    for n in [4usize, 8, 16, 32] {
        let cfg = FeedConfig {
            vantages: n,
            ..FeedConfig::default()
        };
        let vantages = feeds::pick_vantages(&s.world, &cfg, 7);
        let feed = feeds::extract_feed(&s.world, &universe, &vantages);
        let paths: Vec<&[Asn]> = feed.paths().collect();
        let db = infer_relationships(paths.clone(), &InferConfig::default());
        eprintln!(
            "vantages = {n}: inferred {} links of {} ground-truth",
            db.len(),
            s.world.graph.link_count()
        );
        g.bench_with_input(BenchmarkId::new("infer", n), &feed, |b, feed| {
            b.iter(|| {
                let paths: Vec<&[Asn]> = feed.paths().collect();
                black_box(infer_relationships(paths, &InferConfig::default()))
            })
        });
    }
    g.finish();
}

fn bench_clique_candidates(c: &mut Criterion) {
    let s = scenario();
    let mut g = c.benchmark_group("ablation_clique");
    g.sample_size(20);
    for k in [5usize, 10, 20, 40] {
        let cfg = InferConfig {
            clique_candidates: k,
        };
        let paths: Vec<&[Asn]> = s.feed.paths().collect();
        let db = infer_relationships(paths, &cfg);
        eprintln!("clique_candidates = {k}: {} links inferred", db.len());
        g.bench_with_input(BenchmarkId::new("infer", k), &cfg, |b, cfg| {
            b.iter(|| {
                let paths: Vec<&[Asn]> = s.feed.paths().collect();
                black_box(infer_relationships(paths, cfg))
            })
        });
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_short_rule,
    bench_psp_criteria,
    bench_refinements,
    bench_vantage_count,
    bench_clique_candidates
);
criterion_main!(ablations);
