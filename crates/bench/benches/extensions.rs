//! Benchmarks for the beyond-the-paper extensions: the informed model
//! (§7 future work), destination-based-routing consistency, and
//! looking-glass topology augmentation (§1 suggestion). Each prints its
//! result once so `cargo bench` output records the extension findings.

use criterion::{criterion_group, criterion_main, Criterion};
use ir_experiments::scenario::{Scenario, ScenarioConfig};
use std::hint::black_box;
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::build(ScenarioConfig::tiny(7)))
}

fn bench_informed(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_informed::run(s, 40).render());
    let mut g = c.benchmark_group("ext_informed_model");
    g.sample_size(10);
    g.bench_function("learn_and_evaluate", |b| {
        b.iter(|| black_box(ir_experiments::exp_informed::run(black_box(s), 40)))
    });
    g.finish();
}

fn bench_consistency(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_consistency::run(s).render());
    let mut g = c.benchmark_group("ext_consistency");
    g.sample_size(10);
    g.bench_function("campaign_plus_clean_control", |b| {
        b.iter(|| black_box(ir_experiments::exp_consistency::run(black_box(s))))
    });
    g.finish();
}

fn bench_lg_augment(c: &mut Criterion) {
    let s = scenario();
    eprintln!("{}", ir_experiments::exp_lg_augment::run(s, 25).render());
    let mut g = c.benchmark_group("ext_lg_augment");
    g.sample_size(10);
    g.bench_function("gather_reinfer_reclassify", |b| {
        b.iter(|| black_box(ir_experiments::exp_lg_augment::run(black_box(s), 25)))
    });
    g.finish();
}

criterion_group!(
    extensions,
    bench_informed,
    bench_consistency,
    bench_lg_augment
);
criterion_main!(extensions);
