#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Inference substrates: everything the paper consumes as "inferred data".
//!
//! The paper never sees ground truth. It classifies measured paths against
//! **CAIDA's inferred relationships** (Luckie et al. 2013), identifies
//! siblings with **whois + DNS SOA grouping** (Cai et al. 2010), and patches
//! in **complex relationships** from Giotsas et al. 2014. This crate builds
//! all three the way the originals were built — from partial observations —
//! so the inference errors that drive the paper's headline numbers (stale
//! links, missed edge links, misclassified cable ASes) arise organically:
//!
//! * [`feeds`] — BGP feeds as seen from route collectors peering with a
//!   subset of ASes, plus monthly world churn so consecutive snapshots
//!   genuinely differ;
//! * [`relinfer`] — AS-relationship inference from feed paths (clique
//!   detection + Gao-style uphill/downhill voting, a faithful
//!   simplification of Luckie et al.);
//! * [`aggregate`] — the §3.3 five-snapshot aggregation with its
//!   recency-weighted majority poll;
//! * [`siblings`] — Cai-style sibling grouping over whois emails resolved
//!   through DNS SOA, with freemail/RIR filtering;
//! * [`complex`] — the hybrid/partial-transit side dataset (consumed by the
//!   paper as a published artifact; we derive it from ground truth with
//!   partial coverage, substituting for Giotsas's BGP-communities method).

pub mod aggregate;
pub mod complex;
pub mod feeds;
pub mod relinfer;
pub mod siblings;

pub use aggregate::aggregate_snapshots;
pub use complex::ComplexRelDb;
pub use feeds::{BgpFeed, FeedConfig};
pub use relinfer::infer_relationships;
pub use siblings::SiblingGroups;
