//! The complex-relationship side dataset (§4.1, after Giotsas et al. 2014).
//!
//! The paper *consumes* Giotsas et al.'s published dataset of hybrid
//! relationships (AS pairs whose arrangement differs by city) and partial
//! transit. Giotsas et al. built it from BGP communities, which our
//! simulator does not model; per the substitution rule we instead derive
//! the dataset from ground truth with a configurable **coverage** rate —
//! the published dataset was itself incomplete, and coverage (not the
//! production method) is what the downstream analysis is sensitive to.

use ir_topology::World;
use ir_types::{Asn, CityId, Relationship};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One hybrid-relationship entry: at `city`, `b` is `rel` to `a` (instead
/// of whatever the plain topology says).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HybridEntry {
    pub a: Asn,
    pub b: Asn,
    pub city: CityId,
    /// Relationship of `b` as seen from `a`, at `city`.
    pub rel_of_b_from_a: Relationship,
}

/// The dataset: hybrid entries plus partial-transit pairs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ComplexRelDb {
    hybrids: Vec<HybridEntry>,
    /// (provider, customer) pairs with partial transit.
    partial_transit: Vec<(Asn, Asn)>,
    index: BTreeMap<(Asn, Asn, CityId), Relationship>,
}

impl ComplexRelDb {
    /// Derives the dataset from ground truth with the given coverage.
    pub fn derive(world: &World, coverage: f64, seed: u64) -> ComplexRelDb {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x61_07_54_5a);
        let mut db = ComplexRelDb::default();
        for a in 0..world.graph.len() {
            for l in world.graph.links(a) {
                if l.peer < a {
                    continue;
                }
                for &(city, rel) in &l.rel_by_city {
                    if rel != l.rel && rng.random_bool(coverage) {
                        db.push_hybrid(HybridEntry {
                            a: world.graph.asn(a),
                            b: world.graph.asn(l.peer),
                            city,
                            rel_of_b_from_a: rel,
                        });
                    }
                }
            }
        }
        for (idx, policy) in world.policies.iter().enumerate() {
            for customer in policy.partial_transit.keys() {
                if rng.random_bool(coverage) {
                    db.partial_transit.push((world.graph.asn(idx), *customer));
                }
            }
        }
        db.partial_transit.sort_unstable();
        db
    }

    /// Inserts a hybrid entry directly. Primarily for tests and
    /// hand-curated datasets (the normal path is [`ComplexRelDb::derive`]).
    pub fn insert_hybrid_for_tests(
        &mut self,
        a: Asn,
        b: Asn,
        city: CityId,
        rel_of_b_from_a: Relationship,
    ) {
        self.push_hybrid(HybridEntry {
            a,
            b,
            city,
            rel_of_b_from_a,
        });
    }

    /// Registers a partial-transit pair directly (tests / curated data).
    pub fn insert_partial_transit_for_tests(&mut self, provider: Asn, customer: Asn) {
        self.partial_transit.push((provider, customer));
        self.partial_transit.sort_unstable();
    }

    fn push_hybrid(&mut self, e: HybridEntry) {
        self.index.insert((e.a, e.b, e.city), e.rel_of_b_from_a);
        self.index
            .insert((e.b, e.a, e.city), e.rel_of_b_from_a.reverse());
        self.hybrids.push(e);
    }

    /// The relationship of `b` from `a` at `city`, if the dataset has a
    /// hybrid entry for that pair and city.
    pub fn rel_at(&self, a: Asn, b: Asn, city: CityId) -> Option<Relationship> {
        self.index.get(&(a, b, city)).copied()
    }

    /// Whether the pair appears in the hybrid dataset at all (any city).
    pub fn has_pair(&self, a: Asn, b: Asn) -> bool {
        self.hybrids
            .iter()
            .any(|e| (e.a == a && e.b == b) || (e.a == b && e.b == a))
    }

    /// Whether `(provider, customer)` is a known partial-transit pair.
    pub fn is_partial_transit(&self, provider: Asn, customer: Asn) -> bool {
        self.partial_transit
            .binary_search(&(provider, customer))
            .is_ok()
    }

    /// All hybrid entries.
    pub fn hybrids(&self) -> &[HybridEntry] {
        &self.hybrids
    }

    /// All partial-transit pairs.
    pub fn partial_transit_pairs(&self) -> &[(Asn, Asn)] {
        &self.partial_transit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_topology::GeneratorConfig;

    #[test]
    fn full_coverage_matches_ground_truth() {
        let w = GeneratorConfig::default().build(13);
        let db = ComplexRelDb::derive(&w, 1.0, 1);
        // Every ground-truth hybrid override appears, with both directional
        // views consistent.
        let mut truth = 0;
        for a in 0..w.graph.len() {
            for l in w.graph.links(a) {
                if l.peer < a {
                    continue;
                }
                for &(city, rel) in &l.rel_by_city {
                    if rel == l.rel {
                        continue;
                    }
                    truth += 1;
                    let asn_a = w.graph.asn(a);
                    let asn_b = w.graph.asn(l.peer);
                    assert_eq!(db.rel_at(asn_a, asn_b, city), Some(rel));
                    assert_eq!(db.rel_at(asn_b, asn_a, city), Some(rel.reverse()));
                }
            }
        }
        assert!(truth > 0, "world has hybrids");
        assert_eq!(db.hybrids().len(), truth);
        // Partial transit covered too.
        let pt_truth: usize = w.policies.iter().map(|p| p.partial_transit.len()).sum();
        assert_eq!(db.partial_transit_pairs().len(), pt_truth);
    }

    #[test]
    fn partial_coverage_drops_entries() {
        let w = GeneratorConfig::default().build(13);
        let full = ComplexRelDb::derive(&w, 1.0, 2);
        let half = ComplexRelDb::derive(&w, 0.5, 2);
        assert!(half.hybrids().len() < full.hybrids().len());
    }

    #[test]
    fn lookup_misses_are_none() {
        let w = GeneratorConfig::tiny().build(13);
        let db = ComplexRelDb::derive(&w, 1.0, 3);
        assert_eq!(db.rel_at(Asn(1), Asn(2), CityId(0)), None);
        assert!(!db.is_partial_transit(Asn(1), Asn(2)));
    }
}
