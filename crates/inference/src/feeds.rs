//! BGP feeds as route collectors see them (the RouteViews/RIS role).
//!
//! Collectors peer with a subset of ASes — disproportionately core and
//! research networks — and record the paths those ASes export. That bias is
//! load-bearing for the paper: it is why monitor-built topologies miss the
//! edge peering mesh and why prefix-specific policies need two detection
//! criteria (§4.3). This module also provides the monthly world churn that
//! makes consecutive topology snapshots differ, so the §3.3 aggregation has
//! real work to do (and stale links — the Netflix/AS3549 story — can
//! survive into the aggregate).

use ir_bgp::{Announcement, PrefixSim, RoutingUniverse};
use ir_topology::graph::{AsRole, LinkKind, NodeIdx};
use ir_topology::World;
use ir_types::Timestamp;
use ir_types::{Asn, Prefix, Relationship};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeSet;

/// Which ASes peer with the collectors, and how many.
#[derive(Debug, Clone)]
pub struct FeedConfig {
    /// Number of vantage ASes peering with collectors.
    pub vantages: usize,
    /// Fraction of vantages drawn from the top of the hierarchy. The rest
    /// split between small ISPs, edge (eyeball/enterprise) networks, and
    /// education networks — matching how RouteViews/RIS peers mix core and
    /// GREN with a long tail of regional ISPs.
    pub core_fraction: f64,
    /// Probability that an individual feed entry is missing from a dump
    /// (session resets, truncated table transfers). This is the §4.3
    /// visibility noise that makes PSP criterion 1 imperfect.
    pub loss: f64,
}

impl Default for FeedConfig {
    fn default() -> Self {
        FeedConfig {
            vantages: 60,
            core_fraction: 0.4,
            loss: 0.03,
        }
    }
}

/// One collector-observed AS path for a prefix: the vantage AS first, the
/// origin last.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeedEntry {
    pub prefix: Prefix,
    pub path: Vec<Asn>,
}

/// A set of feed entries (one collector dump).
#[derive(Debug, Clone, Default)]
pub struct BgpFeed {
    pub entries: Vec<FeedEntry>,
}

impl BgpFeed {
    /// All AS paths (without prefixes).
    pub fn paths(&self) -> impl Iterator<Item = &[Asn]> {
        self.entries.iter().map(|e| e.path.as_slice())
    }

    /// Every AS link observed in the feed, canonicalized `(min, max)`.
    /// Prepending (consecutive duplicates) never creates self links.
    pub fn observed_links(&self) -> BTreeSet<(Asn, Asn)> {
        let mut links = BTreeSet::new();
        for e in &self.entries {
            for w in e.path.windows(2) {
                if w[0] != w[1] {
                    links.insert((w[0].min(w[1]), w[0].max(w[1])));
                }
            }
        }
        links
    }

    /// The last two *distinct* ASes of a path: (neighbor, origin).
    fn origin_edge(path: &[Asn]) -> Option<(Asn, Asn)> {
        let origin = *path.last()?;
        let neighbor = path.iter().rev().find(|a| **a != origin)?;
        Some((*neighbor, origin))
    }

    /// Whether the feed shows `origin` announcing `prefix` to neighbor
    /// `neighbor` (i.e. some observed path ends `… neighbor origin` for the
    /// prefix, prepending collapsed). The §4.3 PSP criterion-1 evidence
    /// test.
    pub fn announces_to(&self, origin: Asn, neighbor: Asn, prefix: Prefix) -> bool {
        self.entries
            .iter()
            .any(|e| e.prefix == prefix && Self::origin_edge(&e.path) == Some((neighbor, origin)))
    }

    /// Whether the feed shows `origin` announcing *any* prefix to
    /// `neighbor` (criterion-2 precondition).
    pub fn announces_any_to(&self, origin: Asn, neighbor: Asn) -> bool {
        self.entries
            .iter()
            .any(|e| Self::origin_edge(&e.path) == Some((neighbor, origin)))
    }
}

/// Picks the collector vantage ASes for a world: mostly core transit ASes
/// (tier-1s/large ISPs by customer-cone size), the rest education networks.
pub fn pick_vantages(world: &World, cfg: &FeedConfig, seed: u64) -> Vec<Asn> {
    let mut rng = StdRng::seed_from_u64(seed ^ u64_padding());
    let mut transit: Vec<NodeIdx> = (0..world.graph.len())
        .filter(|&i| world.graph.node(i).role == AsRole::Transit)
        .collect();
    // Largest customer cones first (deterministic tie-break by index).
    transit.sort_by_key(|&i| (std::cmp::Reverse(world.graph.customer_cone_size(i)), i));
    let n_core = ((cfg.vantages as f64) * cfg.core_fraction).round() as usize;
    let mut vantages: Vec<Asn> = transit
        .iter()
        .take(n_core)
        .map(|&i| world.graph.asn(i))
        .collect();
    // The long tail: small ISPs, edge networks, and GREN — the peers that
    // give the real collectors their (partial) view of the edge.
    let remainder = cfg.vantages.saturating_sub(vantages.len());
    let n_small = remainder / 2;
    let n_edge = remainder.saturating_sub(n_small) / 2;
    let mut smalls: Vec<NodeIdx> = transit
        .iter()
        .copied()
        .skip(n_core)
        .filter(|&i| world.graph.asn(i).value() >= 5_000)
        .collect();
    smalls.shuffle(&mut rng);
    vantages.extend(smalls.iter().take(n_small).map(|&i| world.graph.asn(i)));
    let mut edges: Vec<NodeIdx> = (0..world.graph.len())
        .filter(|&i| {
            matches!(
                world.graph.node(i).role,
                AsRole::Eyeball | AsRole::Enterprise
            )
        })
        .collect();
    edges.shuffle(&mut rng);
    vantages.extend(edges.iter().take(n_edge).map(|&i| world.graph.asn(i)));
    let mut edu: Vec<NodeIdx> = (0..world.graph.len())
        .filter(|&i| {
            world.graph.node(i).role == AsRole::Education && world.graph.asn(i) != Asn::TESTBED
        })
        .collect();
    edu.shuffle(&mut rng);
    vantages.extend(
        edu.iter()
            .take(cfg.vantages.saturating_sub(vantages.len()))
            .map(|&i| world.graph.asn(i)),
    );
    vantages.sort_unstable();
    vantages.dedup();
    vantages
}

/// Like [`extract_feed`], but drops each entry with probability `loss`
/// (deterministic in `seed`) — the table-transfer/visibility noise real
/// collector archives have.
pub fn extract_feed_lossy(
    world: &World,
    universe: &RoutingUniverse,
    vantages: &[Asn],
    loss: f64,
    seed: u64,
) -> BgpFeed {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED_1055);
    let full = extract_feed(world, universe, vantages);
    BgpFeed {
        entries: full
            .entries
            .into_iter()
            .filter(|_| !rng.random_bool(loss))
            .collect(),
    }
}

/// Extracts the feed from a converged universe: the path each vantage AS
/// uses for every prefix, with the vantage prepended (as it would export to
/// the collector).
pub fn extract_feed(world: &World, universe: &RoutingUniverse, vantages: &[Asn]) -> BgpFeed {
    let mut feed = BgpFeed::default();
    for prefix in universe.prefixes() {
        for &v in vantages {
            let Some(idx) = world.graph.index_of(v) else {
                continue;
            };
            let Some(route) = universe.route(prefix, idx) else {
                continue;
            };
            let mut path = vec![v];
            if !route.is_local() {
                path.extend(route.path.sequence_asns());
            }
            feed.entries.push(FeedEntry { prefix, path });
        }
    }
    feed
}

/// Extracts the feed for a single prefix from a live [`PrefixSim`] — used
/// by the active experiments, which watch collector feeds between
/// announcement rounds (§3.2).
pub fn extract_prefix_feed(sim: &PrefixSim<'_>, vantages: &[Asn]) -> BgpFeed {
    let world = sim.world();
    let mut feed = BgpFeed::default();
    for &v in vantages {
        let Some(idx) = world.graph.index_of(v) else {
            continue;
        };
        let Some(route) = sim.best(idx) else { continue };
        let mut path = vec![v];
        if !route.is_local() {
            path.extend(route.path.sequence_asns());
        }
        feed.entries.push(FeedEntry {
            prefix: sim.prefix(),
            path,
        });
    }
    feed
}

// `0x5eedfeed` spelled as a function to keep the seed-derivation constants
// greppable in one place.
#[allow(non_snake_case)]
fn u64_padding() -> u64 {
    0x5eed_feed_0000_0000
}

/// Produces the monthly world variants behind the five topology snapshots.
///
/// Month `months-1` is the **current** world (the one measurements run on,
/// returned unmodified); earlier months differ by seeded churn: some
/// peering links that exist today were absent then, and — crucially — some
/// links that existed then have since been removed (the "stale link in
/// CAIDA's topology" of §5: a Netflix–AS3549-like edge that "no longer
/// exists according to RIPE ASN Neighbour History").
pub fn monthly_worlds(world: &World, months: usize, seed: u64) -> Vec<World> {
    assert!(months >= 1);
    let mut out = Vec::with_capacity(months);
    for m in 0..months - 1 {
        let mut rng = StdRng::seed_from_u64(seed ^ (0xC0FFEE + m as u64));
        let mut w = world.clone();
        churn(&mut w, &mut rng, months - 1 - m);
        out.push(w);
    }
    out.push(world.clone());
    out
}

/// Applies churn scaled by `distance` months from the present: removes a
/// few of today's peering links (they did not exist yet) and adds a few
/// historical links that have since disappeared.
fn churn(w: &mut World, rng: &mut StdRng, distance: usize) {
    let n = w.graph.len();
    // Collect candidate peer links (never transit links: removing them
    // could strand customers and make old snapshots wildly unrealistic).
    let mut peer_links: Vec<(NodeIdx, NodeIdx)> = Vec::new();
    for a in 0..n {
        for l in w.graph.links(a) {
            if l.peer > a && l.rel == Relationship::Peer && l.kind == LinkKind::Normal {
                peer_links.push((a, l.peer));
            }
        }
    }
    peer_links.shuffle(rng);
    // "Did not exist yet": drop ~1.5% per month of distance.
    let drop = ((peer_links.len() as f64) * 0.015 * distance as f64).round() as usize;
    let mut removed = 0;
    let mut i = 0;
    while removed < drop && i < peer_links.len() {
        let (a, b) = peer_links[i];
        i += 1;
        w.graph.remove_link(a, b);
        removed += 1;
    }
    // "Existed then, gone now": add a few historical content–ISP peerings.
    let adds = (drop / 2).max(if distance > 0 { 2 } else { 0 });
    let contents: Vec<NodeIdx> = (0..n)
        .filter(|&i| w.graph.node(i).role == AsRole::Content)
        .collect();
    let transits: Vec<NodeIdx> = (0..n)
        .filter(|&i| w.graph.node(i).role == AsRole::Transit)
        .collect();
    let mut added = 0;
    let mut guard = 0;
    while added < adds && guard < 100 && !contents.is_empty() && !transits.is_empty() {
        guard += 1;
        let c = contents[rng.random_range(0..contents.len())];
        let t = transits[rng.random_range(0..transits.len())];
        if w.graph.link(c, t).is_none() {
            let city = w.graph.node(t).presence[0];
            if !w.graph.node(c).presence.contains(&city) {
                w.graph.node_mut(c).presence.push(city);
            }
            w.graph
                .add_link(c, t, Relationship::Provider, vec![city], LinkKind::Normal);
            added += 1;
        }
    }
}

/// Converges all prefixes of a (historical) world and extracts its feed in
/// one call — one "monthly collector dump".
pub fn monthly_feed(world: &World, vantages: &[Asn]) -> BgpFeed {
    let universe = RoutingUniverse::compute_all(world);
    extract_feed(world, &universe, vantages)
}

/// Converges a single testbed-style announcement and reports the feed —
/// convenience for control-plane experiment tests.
pub fn feed_after_announcement(
    world: &World,
    ann: Announcement,
    vantages: &[Asn],
    at: Timestamp,
) -> BgpFeed {
    let mut sim = PrefixSim::new(world, ann.prefix);
    sim.announce(ann, at);
    extract_prefix_feed(&sim, vantages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_topology::GeneratorConfig;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| GeneratorConfig::tiny().build(8))
    }

    fn universe() -> &'static RoutingUniverse {
        static U: OnceLock<RoutingUniverse> = OnceLock::new();
        U.get_or_init(|| RoutingUniverse::compute_all(world()))
    }

    #[test]
    fn vantages_prefer_core_and_gren() {
        let w = world();
        let v = pick_vantages(w, &FeedConfig::default(), 1);
        assert!(!v.is_empty());
        // Top transit-degree ASes (low ASN = tier-1 numbering plan) included.
        assert!(v.iter().any(|a| a.value() < 1000), "some tier-1 vantage");
        // Deterministic.
        assert_eq!(v, pick_vantages(w, &FeedConfig::default(), 1));
    }

    #[test]
    fn feed_paths_start_at_vantage_and_end_at_origin() {
        let w = world();
        let v = pick_vantages(w, &FeedConfig::default(), 1);
        let feed = extract_feed(w, universe(), &v);
        assert!(!feed.entries.is_empty());
        for e in &feed.entries {
            assert!(v.contains(&e.path[0]));
            let origin = universe().origin(e.prefix).unwrap();
            assert_eq!(*e.path.last().unwrap(), origin);
        }
    }

    #[test]
    fn feed_misses_edge_links() {
        // The core bias: collectors see far fewer links than ground truth.
        let w = world();
        let v = pick_vantages(w, &FeedConfig::default(), 1);
        let feed = extract_feed(w, universe(), &v);
        let observed = feed.observed_links().len();
        let truth = w.graph.link_count();
        assert!(
            observed < truth,
            "feed saw {observed} links of {truth} — partial visibility expected"
        );
    }

    #[test]
    fn announces_to_detects_origin_neighbor_evidence() {
        let w = world();
        let v = pick_vantages(w, &FeedConfig::default(), 1);
        let feed = extract_feed(w, universe(), &v);
        // Take any multi-hop observed path and check its origin edge.
        let e = feed.entries.iter().find(|e| e.path.len() >= 2).unwrap();
        let origin = *e.path.last().unwrap();
        let neigh = e.path[e.path.len() - 2];
        assert!(feed.announces_to(origin, neigh, e.prefix));
        assert!(feed.announces_any_to(origin, neigh));
        assert!(!feed.announces_to(origin, Asn(999_999), e.prefix));
    }

    #[test]
    fn monthly_worlds_changes_history_not_present() {
        let w = world();
        let months = monthly_worlds(w, 5, 7);
        assert_eq!(months.len(), 5);
        assert_eq!(months[4].graph.link_count(), w.graph.link_count());
        // The oldest month's link *set* differs from the present (counts can
        // coincide when removals and additions balance).
        let link_set = |g: &ir_topology::AsGraph| {
            let mut s = BTreeSet::new();
            for a in 0..g.len() {
                for l in g.links(a) {
                    if l.peer > a {
                        s.insert((g.asn(a), g.asn(l.peer)));
                    }
                }
            }
            s
        };
        assert_ne!(
            link_set(&months[0].graph),
            link_set(&w.graph),
            "oldest month differs"
        );
        // Some link existed in month 0 but not today (stale-link source).
        let mut stale = 0;
        for a in 0..months[0].graph.len().min(w.graph.len()) {
            for l in months[0].graph.links(a) {
                if l.peer > a && l.peer < w.graph.len() && w.graph.link(a, l.peer).is_none() {
                    stale += 1;
                }
            }
        }
        assert!(
            stale > 0,
            "historical links that have since disappeared exist"
        );
    }

    #[test]
    fn monthly_worlds_deterministic() {
        let w = world();
        let a = monthly_worlds(w, 3, 9);
        let b = monthly_worlds(w, 3, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.graph.link_count(), y.graph.link_count());
        }
    }
}

impl BgpFeed {
    /// Serializes the feed as a RIB-dump-style text document: one entry per
    /// line, `prefix|asn asn asn …` (observer first, origin last). The
    /// interchange format for archiving collector dumps; [`BgpFeed::from_dump`]
    /// reads it back.
    pub fn to_dump(&self) -> String {
        let mut out = String::from("# synthetic RIB dump\n");
        for e in &self.entries {
            let path: Vec<String> = e.path.iter().map(|a| a.0.to_string()).collect();
            out.push_str(&format!("{}|{}\n", e.prefix, path.join(" ")));
        }
        out
    }

    /// Parses a RIB-dump-style document produced by [`BgpFeed::to_dump`].
    pub fn from_dump(text: &str) -> Result<BgpFeed, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (pfx, path) = line
                .split_once('|')
                .ok_or_else(|| format!("line {}: missing '|'", i + 1))?;
            let prefix: Prefix = pfx.parse().map_err(|e| format!("line {}: {e}", i + 1))?;
            let path: Vec<Asn> = path
                .split_whitespace()
                .map(|t| t.parse::<u32>().map(Asn))
                .collect::<Result<_, _>>()
                .map_err(|e| format!("line {}: bad ASN: {e}", i + 1))?;
            if path.is_empty() {
                return Err(format!("line {}: empty path", i + 1));
            }
            entries.push(FeedEntry { prefix, path });
        }
        Ok(BgpFeed { entries })
    }
}

#[cfg(test)]
mod dump_tests {
    use super::*;

    fn feed() -> BgpFeed {
        BgpFeed {
            entries: vec![
                FeedEntry {
                    prefix: "10.1.0.0/24".parse().unwrap(),
                    path: vec![Asn(100), Asn(7), Asn(42)],
                },
                FeedEntry {
                    prefix: "10.2.0.0/24".parse().unwrap(),
                    path: vec![Asn(9)],
                },
            ],
        }
    }

    #[test]
    fn dump_roundtrip() {
        let f = feed();
        let text = f.to_dump();
        let back = BgpFeed::from_dump(&text).unwrap();
        assert_eq!(back.entries, f.entries);
        assert!(text.contains("10.1.0.0/24|100 7 42"));
    }

    #[test]
    fn dump_parse_errors_are_located() {
        assert!(BgpFeed::from_dump("garbage")
            .unwrap_err()
            .contains("line 1"));
        assert!(BgpFeed::from_dump("10.0.0.0/24|")
            .unwrap_err()
            .contains("empty path"));
        assert!(BgpFeed::from_dump("10.0.0.0/24|1 x 3")
            .unwrap_err()
            .contains("bad ASN"));
        assert!(BgpFeed::from_dump("not-a-prefix|1 2")
            .unwrap_err()
            .contains("line 1"));
        // Comments and blanks are fine.
        assert!(
            BgpFeed::from_dump("# hi\n\n10.0.0.0/24|1 2\n")
                .unwrap()
                .entries
                .len()
                == 1
        );
    }
}
