//! Sibling-AS inference from whois + DNS SOA (§4.2, after Cai et al.).
//!
//! The paper's pipeline keyed on whois **email addresses** only (the field
//! with best precision/recall), unified different domains of one company
//! through their **DNS SOA** records (dish.com and dishaccess.tv share the
//! dishnetwork.com authoritative domain), and removed groups whose contact
//! address is hosted at a freemail provider or a regional Internet registry
//! (shared mail domains say nothing about common ownership).

use ir_topology::orgs::{email_domain, OrgRegistry};
use ir_types::Asn;
use std::collections::BTreeMap;

/// Inferred sibling groups.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SiblingGroups {
    groups: Vec<Vec<Asn>>,
    of: BTreeMap<Asn, usize>,
}

impl SiblingGroups {
    /// Runs the inference over a registry's whois records.
    pub fn infer(registry: &OrgRegistry) -> SiblingGroups {
        // Bucket ASNs by SOA-resolved email domain.
        let mut buckets: BTreeMap<String, Vec<Asn>> = BTreeMap::new();
        for rec in registry.whois_records() {
            let Some(domain) = email_domain(&rec.email) else {
                continue;
            };
            // Freemail / RIR-hosted addresses carry no ownership signal.
            if OrgRegistry::is_shared_mail_domain(domain) {
                continue;
            }
            // Resolve through DNS SOA where a record exists; fall back to
            // the literal domain otherwise.
            let key = registry.soa_lookup(domain).unwrap_or(domain).to_string();
            buckets.entry(key).or_default().push(rec.asn);
        }
        // Only multi-AS buckets are sibling groups.
        let mut groups: Vec<Vec<Asn>> = buckets
            .into_values()
            .filter(|v| v.len() >= 2)
            .map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v
            })
            .filter(|v| v.len() >= 2)
            .collect();
        groups.sort();
        let mut of = BTreeMap::new();
        for (i, g) in groups.iter().enumerate() {
            for &a in g {
                of.insert(a, i);
            }
        }
        SiblingGroups { groups, of }
    }

    /// Whether two ASNs were inferred to belong to one organization.
    pub fn are_siblings(&self, a: Asn, b: Asn) -> bool {
        a != b && self.of.contains_key(&a) && self.of.get(&a) == self.of.get(&b)
    }

    /// All groups, each sorted ascending.
    pub fn groups(&self) -> &[Vec<Asn>] {
        &self.groups
    }

    /// Number of groups (the paper found 94 in its traceroute dataset).
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether no groups were found.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_topology::orgs::{Organization, WhoisRecord};
    use ir_types::{CountryId, OrgId};

    fn registry() -> OrgRegistry {
        let mut r = OrgRegistry::default();
        r.add_org(Organization {
            id: OrgId(0),
            name: "dish".into(),
            domains: vec!["dish.example".into(), "dishaccess.example".into()],
            soa_domain: "dishnetwork.example".into(),
            country: CountryId(0),
        });
        // Two ASes of one org, registered under *different* domains that
        // share an SOA.
        r.add_whois(WhoisRecord {
            asn: Asn(100),
            email: "noc@dish.example".into(),
            org_field: "ORG-A".into(),
            country: CountryId(0),
        });
        r.add_whois(WhoisRecord {
            asn: Asn(101),
            email: "peering@dishaccess.example".into(),
            org_field: "ORG-B".into(),
            country: CountryId(0),
        });
        // Two unrelated ASes registered with freemail addresses.
        r.add_whois(WhoisRecord {
            asn: Asn(200),
            email: "a@hotmail.example".into(),
            org_field: "ORG-C".into(),
            country: CountryId(1),
        });
        r.add_whois(WhoisRecord {
            asn: Asn(201),
            email: "b@hotmail.example".into(),
            org_field: "ORG-D".into(),
            country: CountryId(2),
        });
        // A singleton org.
        r.add_whois(WhoisRecord {
            asn: Asn(300),
            email: "noc@lonely.example".into(),
            org_field: "ORG-E".into(),
            country: CountryId(3),
        });
        r
    }

    #[test]
    fn soa_unifies_sibling_domains() {
        let g = SiblingGroups::infer(&registry());
        assert!(g.are_siblings(Asn(100), Asn(101)));
        assert_eq!(g.len(), 1);
        assert_eq!(g.groups()[0], vec![Asn(100), Asn(101)]);
    }

    #[test]
    fn freemail_groups_filtered() {
        let g = SiblingGroups::infer(&registry());
        assert!(!g.are_siblings(Asn(200), Asn(201)));
    }

    #[test]
    fn singletons_and_self_pairs_are_not_siblings() {
        let g = SiblingGroups::infer(&registry());
        assert!(!g.are_siblings(Asn(300), Asn(300)));
        assert!(!g.are_siblings(Asn(300), Asn(100)));
    }

    #[test]
    fn generated_worlds_sibling_recall() {
        // In a generated world, inferred groups must match the ground-truth
        // multi-AS organizations with non-freemail whois.
        let w = ir_topology::GeneratorConfig::default().build(21);
        let g = SiblingGroups::infer(&w.orgs);
        // Ground truth: organizations owning ≥2 ASes.
        let mut by_org: BTreeMap<u32, Vec<Asn>> = BTreeMap::new();
        for node in w.graph.nodes() {
            by_org.entry(node.org.0).or_default().push(node.asn);
        }
        let truth: Vec<&Vec<Asn>> = by_org.values().filter(|v| v.len() >= 2).collect();
        assert!(!truth.is_empty(), "world has sibling orgs");
        for group in &truth {
            for pair in group.windows(2) {
                assert!(
                    g.are_siblings(pair[0], pair[1]),
                    "{} and {} share an org but weren't inferred as siblings",
                    pair[0],
                    pair[1]
                );
            }
        }
    }
}
