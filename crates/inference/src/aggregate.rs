//! Aggregation of monthly relationship snapshots (§3.3).
//!
//! The paper aggregates five monthly CAIDA topologies "to mitigate the
//! impact of transient link failures", resolving conflicts by a majority
//! poll that weighs recent months more: *"if the latest two months had the
//! same inference, we used that inference regardless of the first three
//! months."* Links present in any snapshot survive into the aggregate —
//! which is exactly how stale links (§5's Netflix case) enter the topology
//! the measured paths are judged against.

use ir_topology::{AsnInterner, RelationshipDb};
use ir_types::Relationship;
use std::collections::{BTreeMap, HashMap};

/// Aggregates snapshots ordered **oldest first**.
///
/// ASNs across all snapshots are interned once and pairs are keyed by
/// dense `(u32, u32)` indices, so the merge works over flat integer keys
/// rather than comparing ASN tuples.
pub fn aggregate_snapshots(snapshots: &[RelationshipDb]) -> RelationshipDb {
    assert!(!snapshots.is_empty(), "need at least one snapshot");
    let interner = AsnInterner::from_iter(snapshots.iter().flat_map(|s| s.asns()));
    // Gather, per canonical pair, the per-month inferences (None = absent).
    // Canonical orientation is by ASN (lower ASN first), matching the
    // serial-format convention.
    let mut pairs: HashMap<(u32, u32), Vec<Option<Relationship>>> = HashMap::new();
    for (m, snap) in snapshots.iter().enumerate() {
        for (a, b, rel) in snap.iter() {
            let (lo, hi) = (a.min(b), a.max(b));
            // Normalize: relationship of hi as seen from lo.
            let rel_from_lo = if a == lo { rel } else { rel.reverse() };
            // Both ASNs were interned from these same snapshots; a miss
            // would mean a corrupted snapshot — drop the pair, don't abort
            // the aggregation.
            let (Some(lo_id), Some(hi_id)) = (interner.get(lo), interner.get(hi)) else {
                continue;
            };
            let key = (lo_id, hi_id);
            let entry = pairs
                .entry(key)
                .or_insert_with(|| vec![None; snapshots.len()]);
            entry[m] = Some(rel_from_lo);
        }
    }

    let n = snapshots.len();
    let mut out = RelationshipDb::default();
    for ((lo, hi), months) in pairs {
        // `decide` is None only for an all-absent row, which cannot be
        // constructed here; treat it as a link with no usable evidence.
        if let Some(rel) = decide(&months, n) {
            out.insert(interner.asn(lo), interner.asn(hi), rel);
        }
    }
    out
}

/// The paper's decision rule for one link; `None` when no month carries an
/// inference (no usable evidence).
fn decide(months: &[Option<Relationship>], n: usize) -> Option<Relationship> {
    // Latest-two-months agreement short-circuits everything.
    if n >= 2 {
        if let (Some(a), Some(b)) = (months[n - 1], months[n - 2]) {
            if a == b {
                return Some(a);
            }
        }
    }
    // Otherwise: weighted majority poll, more recent months weigh more.
    let mut scores: BTreeMap<u8, (usize, Relationship)> = BTreeMap::new();
    for (m, rel) in months.iter().enumerate() {
        if let Some(rel) = rel {
            let weight = m + 1; // month 0 oldest
            let key = rel_key(*rel);
            let e = scores.entry(key).or_insert((0, *rel));
            e.0 += weight;
        }
    }
    scores
        .values()
        .max_by_key(|(w, rel)| (*w, std::cmp::Reverse(rel_key(*rel))))
        .map(|(_, rel)| *rel)
}

fn rel_key(rel: Relationship) -> u8 {
    match rel {
        Relationship::Customer => 0,
        Relationship::Provider => 1,
        Relationship::Peer => 2,
        Relationship::Sibling => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_types::Asn;

    fn snap(entries: &[(u32, u32, Relationship)]) -> RelationshipDb {
        let mut db = RelationshipDb::default();
        for &(a, b, rel) in entries {
            db.insert(Asn(a), Asn(b), rel);
        }
        db
    }

    #[test]
    fn latest_two_months_override_majority() {
        use Relationship::*;
        // Months 0-2 say peer; months 3-4 agree on provider → provider wins.
        let snaps = vec![
            snap(&[(1, 2, Peer)]),
            snap(&[(1, 2, Peer)]),
            snap(&[(1, 2, Peer)]),
            snap(&[(1, 2, Provider)]),
            snap(&[(1, 2, Provider)]),
        ];
        let agg = aggregate_snapshots(&snaps);
        assert_eq!(agg.rel(Asn(1), Asn(2)), Some(Provider));
    }

    #[test]
    fn weighted_majority_when_latest_disagree() {
        use Relationship::*;
        // Months: P2P, P2P, P2P, Provider, Peer (latest two differ).
        // Weights: peer = 1+2+3+5 = 11, provider = 4 → peer.
        let snaps = vec![
            snap(&[(1, 2, Peer)]),
            snap(&[(1, 2, Peer)]),
            snap(&[(1, 2, Peer)]),
            snap(&[(1, 2, Provider)]),
            snap(&[(1, 2, Peer)]),
        ];
        // Latest two: Peer+Provider differ? months[4]=Peer, months[3]=Provider
        // → fall to weighted majority → Peer.
        let agg = aggregate_snapshots(&snaps);
        assert_eq!(agg.rel(Asn(1), Asn(2)), Some(Peer));
    }

    #[test]
    fn stale_links_survive_aggregation() {
        use Relationship::*;
        // A link present only in old months is still in the aggregate — the
        // §5 stale-link phenomenon.
        let snaps = vec![
            snap(&[(1, 2, Peer), (3, 4, Provider)]),
            snap(&[(1, 2, Peer), (3, 4, Provider)]),
            snap(&[(1, 2, Peer)]),
            snap(&[(1, 2, Peer)]),
            snap(&[(1, 2, Peer)]),
        ];
        let agg = aggregate_snapshots(&snaps);
        assert_eq!(agg.rel(Asn(3), Asn(4)), Some(Provider));
        assert_eq!(agg.len(), 2);
    }

    #[test]
    fn single_snapshot_passthrough() {
        use Relationship::*;
        let s = snap(&[(1, 2, Peer), (2, 3, Provider)]);
        let agg = aggregate_snapshots(std::slice::from_ref(&s));
        assert_eq!(agg, s);
    }

    #[test]
    fn orientation_preserved_through_aggregation() {
        use Relationship::*;
        // 5 is provider of 9 in both months, inserted with opposite
        // argument orders.
        let snaps = vec![snap(&[(9, 5, Provider)]), snap(&[(5, 9, Customer)])];
        let agg = aggregate_snapshots(&snaps);
        assert_eq!(agg.rel(Asn(9), Asn(5)), Some(Provider));
        assert_eq!(agg.rel(Asn(5), Asn(9)), Some(Customer));
    }
}
