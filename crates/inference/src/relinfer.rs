//! AS-relationship inference from observed BGP paths.
//!
//! A faithful simplification of Luckie et al. 2013 ("AS relationships,
//! customer cones, and validation"), keeping the parts that matter for this
//! study:
//!
//! 1. **transit degree** — for each AS, the number of distinct ASes it
//!    appears *between* on observed paths;
//! 2. **clique inference** — the provider-free core: greedily grow a clique
//!    (by observed adjacency) from the highest-transit-degree ASes;
//! 3. **c2p voting** — walk every path; it ascends until its topmost AS
//!    (clique member, or highest transit degree on the path) and descends
//!    after it; each traversed link votes `customer→provider` on the way up
//!    and `provider→customer` on the way down;
//! 4. **p2p remainder** — links adjacent to the top, links inside the
//!    clique, and links whose votes conflict without majority become peer
//!    links.
//!
//! The failure modes the paper investigates fall out organically: links
//! never observed are missing; **undersea-cable ASes** — low transit
//! degree, sitting "between" two big ISPs — get inferred as a customer on
//! one side and provider on the other, although ground truth has both
//! big ISPs paying the cable operator (§6); hybrid relationships collapse
//! to whichever orientation the feeds saw more often.

use ir_topology::RelationshipDb;
use ir_types::{Asn, Relationship};
use std::collections::{BTreeMap, BTreeSet};

/// Collapses consecutive duplicate ASNs (AS-path prepending) — the first
/// thing every real inference pipeline does to raw feed paths.
fn dedup_prepending(path: &[Asn]) -> Vec<Asn> {
    let mut out: Vec<Asn> = Vec::with_capacity(path.len());
    for &a in path {
        if out.last() != Some(&a) {
            out.push(a);
        }
    }
    out
}

/// Tuning for the inference pass.
#[derive(Debug, Clone)]
pub struct InferConfig {
    /// How many top-transit-degree ASes are considered as clique seeds.
    pub clique_candidates: usize,
}

impl Default for InferConfig {
    fn default() -> Self {
        InferConfig {
            clique_candidates: 20,
        }
    }
}

/// Computes transit degrees: `td[x]` = number of distinct neighbors that
/// appear adjacent to `x` while `x` is in the middle of some path.
pub fn transit_degrees<'a, I: IntoIterator<Item = &'a [Asn]>>(paths: I) -> BTreeMap<Asn, usize> {
    let mut seen: BTreeMap<Asn, BTreeSet<Asn>> = BTreeMap::new();
    for path in paths {
        let path = dedup_prepending(path);
        for w in path.windows(3) {
            let mid = w[1];
            let e = seen.entry(mid).or_default();
            e.insert(w[0]);
            e.insert(w[2]);
        }
    }
    seen.into_iter().map(|(a, s)| (a, s.len())).collect()
}

/// Infers the provider-free clique from observed adjacency.
pub fn infer_clique<'a, I: IntoIterator<Item = &'a [Asn]>>(
    paths: I,
    cfg: &InferConfig,
) -> BTreeSet<Asn> {
    let paths: Vec<&[Asn]> = paths.into_iter().collect();
    let td = transit_degrees(paths.iter().copied());
    let mut adj: BTreeMap<Asn, BTreeSet<Asn>> = BTreeMap::new();
    for path in &paths {
        let path = dedup_prepending(path);
        for w in path.windows(2) {
            adj.entry(w[0]).or_default().insert(w[1]);
            adj.entry(w[1]).or_default().insert(w[0]);
        }
    }
    // Rank by transit degree, descending, tie-break by ASN for determinism.
    let mut ranked: Vec<(Asn, usize)> = td.into_iter().collect();
    ranked.sort_by_key(|&(a, d)| (std::cmp::Reverse(d), a));
    ranked.truncate(cfg.clique_candidates);
    let mut clique: BTreeSet<Asn> = BTreeSet::new();
    for (a, _) in ranked {
        if clique
            .iter()
            .all(|c| adj.get(&a).map(|s| s.contains(c)).unwrap_or(false))
        {
            clique.insert(a);
        }
    }
    clique
}

/// Infers a relationship snapshot from observed paths.
pub fn infer_relationships<'a, I>(paths: I, cfg: &InferConfig) -> RelationshipDb
where
    I: IntoIterator<Item = &'a [Asn]>,
{
    let paths: Vec<&[Asn]> = paths.into_iter().collect();
    let td = transit_degrees(paths.iter().copied());
    let clique = infer_clique(paths.iter().copied(), cfg);

    // Votes per canonical link: (c2p lo→hi, c2p hi→lo, p2p).
    #[derive(Default, Clone, Copy)]
    struct Votes {
        lo_pays_hi: usize,
        hi_pays_lo: usize,
        p2p: usize,
    }
    let mut votes: BTreeMap<(Asn, Asn), Votes> = BTreeMap::new();
    let mut vote = |a: Asn, b: Asn, rel_of_b_from_a: Relationship| {
        let key = (a.min(b), a.max(b));
        let v = votes.entry(key).or_default();
        match rel_of_b_from_a {
            Relationship::Provider => {
                if a < b {
                    v.lo_pays_hi += 1;
                } else {
                    v.hi_pays_lo += 1;
                }
            }
            Relationship::Customer => {
                if a < b {
                    v.hi_pays_lo += 1;
                } else {
                    v.lo_pays_hi += 1;
                }
            }
            _ => v.p2p += 1,
        }
    };

    for raw in &paths {
        let path = dedup_prepending(raw);
        if path.len() < 2 {
            continue;
        }
        let path = &path[..];
        // The topmost position: first clique member, else the max transit
        // degree on the path.
        let top = path
            .iter()
            .position(|a| clique.contains(a))
            .unwrap_or_else(|| {
                let mut best = 0usize;
                let mut best_td = 0usize;
                for (i, a) in path.iter().enumerate() {
                    let d = td.get(a).copied().unwrap_or(0);
                    if d > best_td {
                        best_td = d;
                        best = i;
                    }
                }
                best
            });
        for (i, w) in path.windows(2).enumerate() {
            let (a, b) = (w[0], w[1]);
            if clique.contains(&a) && clique.contains(&b) {
                vote(a, b, Relationship::Peer);
            } else if i < top {
                // Ascending: a pays b.
                vote(a, b, Relationship::Provider);
            } else {
                // Descending: b pays a.
                vote(a, b, Relationship::Customer);
            }
        }
    }

    let mut db = RelationshipDb::default();
    for ((lo, hi), v) in votes {
        // Majority poll; conflicting orientations without a strict winner
        // become peer links (matching how inference hedges).
        if v.lo_pays_hi > v.hi_pays_lo && v.lo_pays_hi >= v.p2p {
            db.insert(lo, hi, Relationship::Provider);
        } else if v.hi_pays_lo > v.lo_pays_hi && v.hi_pays_lo >= v.p2p {
            db.insert(hi, lo, Relationship::Provider);
        } else {
            db.insert(lo, hi, Relationship::Peer);
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[u32]) -> Vec<Asn> {
        v.iter().map(|&x| Asn(x)).collect()
    }

    /// A small scene: clique {1,2}; 10,11 are customers of 1 resp. 2;
    /// 100 is a customer of 10.
    fn scene() -> Vec<Vec<Asn>> {
        vec![
            p(&[10, 1, 2, 11]),
            p(&[100, 10, 1, 2, 11]),
            p(&[11, 2, 1, 10, 100]),
            p(&[10, 1, 2]),
            p(&[11, 2, 1]),
        ]
    }

    #[test]
    fn transit_degree_counts_distinct_neighbors() {
        let paths = scene();
        let refs: Vec<&[Asn]> = paths.iter().map(|v| v.as_slice()).collect();
        let td = transit_degrees(refs);
        assert_eq!(td[&Asn(1)], 2); // between 10 and 2 on every path
        assert_eq!(td[&Asn(10)], 2); // between 100 and 1
        assert!(!td.contains_key(&Asn(100)), "leaf never transits");
    }

    #[test]
    fn clique_is_the_top_pair() {
        let paths = scene();
        let refs: Vec<&[Asn]> = paths.iter().map(|v| v.as_slice()).collect();
        let clique = infer_clique(refs, &InferConfig::default());
        assert!(clique.contains(&Asn(1)));
        assert!(clique.contains(&Asn(2)));
        assert!(!clique.contains(&Asn(100)));
    }

    #[test]
    fn relationships_match_the_scene() {
        let paths = scene();
        let refs: Vec<&[Asn]> = paths.iter().map(|v| v.as_slice()).collect();
        let db = infer_relationships(refs, &InferConfig::default());
        assert_eq!(db.rel(Asn(1), Asn(2)), Some(Relationship::Peer));
        assert_eq!(db.rel(Asn(10), Asn(1)), Some(Relationship::Provider));
        assert_eq!(db.rel(Asn(11), Asn(2)), Some(Relationship::Provider));
        assert_eq!(db.rel(Asn(100), Asn(10)), Some(Relationship::Provider));
        assert_eq!(db.rel(Asn(1), Asn(10)), Some(Relationship::Customer));
    }

    #[test]
    fn conflicting_votes_become_peer() {
        // 5-6 observed ascending in one path and descending in another,
        // equally often → hedge to p2p.
        let paths = [p(&[5, 6, 1, 2]), p(&[6, 5, 1, 2]), p(&[9, 1, 2])];
        let refs: Vec<&[Asn]> = paths.iter().map(|v| v.as_slice()).collect();
        let db = infer_relationships(refs, &InferConfig::default());
        assert_eq!(db.rel(Asn(5), Asn(6)), Some(Relationship::Peer));
    }

    #[test]
    fn prepending_is_collapsed() {
        // Origin 100 prepends itself toward 10; inference must not see a
        // self link or an inflated hierarchy.
        let paths = [p(&[10, 1, 2, 11]), p(&[11, 2, 1, 10, 100, 100, 100])];
        let refs: Vec<&[Asn]> = paths.iter().map(|v| v.as_slice()).collect();
        let db = infer_relationships(refs, &InferConfig::default());
        assert!(!db.has_link(Asn(100), Asn(100)));
        assert_eq!(db.rel(Asn(100), Asn(10)), Some(Relationship::Provider));
    }

    #[test]
    fn unobserved_links_absent() {
        let paths = scene();
        let refs: Vec<&[Asn]> = paths.iter().map(|v| v.as_slice()).collect();
        let db = infer_relationships(refs, &InferConfig::default());
        assert!(!db.has_link(Asn(10), Asn(11)));
    }
}
