//! Autonomous-system numbers, organization ids, and the Oliveira et al.
//! AS-type classification used by Table 1 of the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An autonomous-system number.
///
/// Real ASNs are 32-bit; we keep the same width so synthetic worlds can use
/// recognizable numbering schemes (e.g. reserving a range for undersea-cable
/// operators or for the PEERING-like testbed ASN).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// The reserved ASN used by the PEERING-like testbed in synthetic worlds.
    pub const TESTBED: Asn = Asn(47_065); // the real PEERING testbed ASN

    /// Returns the raw numeric value.
    #[inline]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

/// Identifier of an organization (a real-world company that may operate
/// several sibling ASes, cf. Cai et al. and §4.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct OrgId(pub u32);

impl fmt::Display for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "org{}", self.0)
    }
}

/// AS classification in the style of Oliveira et al. (used by Table 1 to
/// describe where vantage points sit in the AS hierarchy).
///
/// The classification is structural: stubs have no customers, small ISPs a
/// handful, large ISPs many, and Tier-1s form the provider-free clique at the
/// top of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum AsType {
    /// No customers of its own (enterprises, eyeball access networks, content).
    Stub,
    /// A regional provider with a small customer cone.
    SmallIsp,
    /// A national/continental provider with a large customer cone.
    LargeIsp,
    /// Member of the provider-free clique at the top of the hierarchy.
    Tier1,
}

impl AsType {
    /// All variants, in the order Table 1 lists them.
    pub const ALL: [AsType; 4] = [
        AsType::Stub,
        AsType::SmallIsp,
        AsType::LargeIsp,
        AsType::Tier1,
    ];

    /// Human-readable label matching the paper's Table 1 rows.
    pub fn label(self) -> &'static str {
        match self {
            AsType::Stub => "Stub-AS",
            AsType::SmallIsp => "Small ISP",
            AsType::LargeIsp => "Large ISP",
            AsType::Tier1 => "Tier 1",
        }
    }
}

impl fmt::Display for AsType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_display_and_order() {
        assert_eq!(Asn(174).to_string(), "AS174");
        assert!(Asn(1) < Asn(2));
        assert_eq!(Asn::from(7018).value(), 7018);
    }

    #[test]
    fn astype_labels_are_table1_rows() {
        let labels: Vec<&str> = AsType::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels, ["Stub-AS", "Small ISP", "Large ISP", "Tier 1"]);
    }

    #[test]
    fn astype_order_is_hierarchical() {
        assert!(AsType::Stub < AsType::SmallIsp);
        assert!(AsType::SmallIsp < AsType::LargeIsp);
        assert!(AsType::LargeIsp < AsType::Tier1);
    }

    #[test]
    fn serde_roundtrip_transparent() {
        let asn: Asn = serde_json::from_str("3356").unwrap();
        assert_eq!(asn, Asn(3356));
        assert_eq!(serde_json::to_string(&asn).unwrap(), "3356");
    }
}
