//! Geography: continents, countries, cities.
//!
//! §5–6 of the paper study how geography shapes routing decisions —
//! continental vs intercontinental traceroutes (Figure 3), domestic-path
//! preference (Table 3), and undersea cables (Table 4). The synthetic world
//! therefore carries a three-level geography: every AS has a home country,
//! every interconnection happens in a city, and every city belongs to a
//! country on a continent.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The six continents the paper's Figure 3 and Table 3 break down by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Continent {
    Africa,
    Asia,
    Europe,
    NorthAmerica,
    Oceania,
    SouthAmerica,
}

impl Continent {
    /// All continents, in a fixed deterministic order.
    pub const ALL: [Continent; 6] = [
        Continent::Africa,
        Continent::Asia,
        Continent::Europe,
        Continent::NorthAmerica,
        Continent::Oceania,
        Continent::SouthAmerica,
    ];

    /// Two-letter code used in the paper's Figure 3 ("AF", "NA", …).
    pub fn code(self) -> &'static str {
        match self {
            Continent::Africa => "AF",
            Continent::Asia => "AS",
            Continent::Europe => "EU",
            Continent::NorthAmerica => "NA",
            Continent::Oceania => "OC",
            Continent::SouthAmerica => "SA",
        }
    }

    /// Full name as used in Table 3.
    pub fn name(self) -> &'static str {
        match self {
            Continent::Africa => "Africa",
            Continent::Asia => "Asia",
            Continent::Europe => "Europe",
            Continent::NorthAmerica => "N. America",
            Continent::Oceania => "Oceania",
            Continent::SouthAmerica => "S. America",
        }
    }

    /// Index into [`Continent::ALL`].
    pub fn index(self) -> usize {
        match self {
            Continent::Africa => 0,
            Continent::Asia => 1,
            Continent::Europe => 2,
            Continent::NorthAmerica => 3,
            Continent::Oceania => 4,
            Continent::SouthAmerica => 5,
        }
    }
}

impl fmt::Display for Continent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Identifier of a country in the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CountryId(pub u16);

impl fmt::Display for CountryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{:03}", self.0)
    }
}

/// Identifier of a city in the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CityId(pub u16);

impl fmt::Display for CityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "city{:04}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let mut codes: Vec<&str> = Continent::ALL.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 6);
    }

    #[test]
    fn index_roundtrips() {
        for (i, c) in Continent::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Continent::NorthAmerica.to_string(), "N. America");
        assert_eq!(CountryId(7).to_string(), "C007");
        assert_eq!(CityId(42).to_string(), "city0042");
    }
}
