//! The workspace-wide error taxonomy.
//!
//! Loading, parsing, and measurement paths degrade instead of panicking:
//! a malformed line becomes a [`Error::Parse`] the caller can log and skip,
//! a missing field becomes [`Error::Incomplete`], an exhausted retry budget
//! becomes [`Error::Exhausted`]. Per-crate error types convert `Into` this
//! one at crate boundaries, so `exp_*` analyses can annotate a partial
//! dataset with *what* went missing rather than abort.

/// What went wrong, workspace-wide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Input text did not parse; `line` is 1-based when known.
    Parse {
        line: Option<usize>,
        message: String,
    },
    /// A referenced entity (ASN, prefix, city, hostname…) is unknown.
    Unknown { what: &'static str, id: String },
    /// A record is present but missing data required downstream.
    Incomplete { what: &'static str, detail: String },
    /// A retryable operation ran out of attempts.
    Exhausted { what: &'static str, attempts: u32 },
    /// A subsystem is down (fault-injected or genuinely unavailable).
    Unavailable { what: &'static str, detail: String },
}

impl Error {
    /// Convenience constructor for parse failures.
    pub fn parse(line: impl Into<Option<usize>>, message: impl Into<String>) -> Error {
        Error::Parse {
            line: line.into(),
            message: message.into(),
        }
    }

    /// Convenience constructor for incomplete-record degradations.
    pub fn incomplete(what: &'static str, detail: impl Into<String>) -> Error {
        Error::Incomplete {
            what,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse {
                line: Some(l),
                message,
            } => write!(f, "parse error (line {l}): {message}"),
            Error::Parse {
                line: None,
                message,
            } => write!(f, "parse error: {message}"),
            Error::Unknown { what, id } => write!(f, "unknown {what}: {id}"),
            Error::Incomplete { what, detail } => write!(f, "incomplete {what}: {detail}"),
            Error::Exhausted { what, attempts } => {
                write!(f, "{what} abandoned after {attempts} attempts")
            }
            Error::Unavailable { what, detail } => write!(f, "{what} unavailable: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases = [
            (Error::parse(3, "bad rel"), "parse error (line 3): bad rel"),
            (Error::parse(None, "bad"), "parse error: bad"),
            (
                Error::Unknown {
                    what: "hostname",
                    id: "cdn.example".into(),
                },
                "unknown hostname: cdn.example",
            ),
            (
                Error::incomplete("traceroute", "no reached hop"),
                "incomplete traceroute: no reached hop",
            ),
            (
                Error::Exhausted {
                    what: "measurement",
                    attempts: 4,
                },
                "measurement abandoned after 4 attempts",
            ),
            (
                Error::Unavailable {
                    what: "mux",
                    detail: "outage round 2".into(),
                },
                "mux unavailable: outage round 2",
            ),
        ];
        for (e, s) in cases {
            assert_eq!(e.to_string(), s);
        }
    }
}
