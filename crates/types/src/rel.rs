//! Business relationships between ASes.
//!
//! Two views exist and both are needed:
//!
//! * [`Relationship`] — the relationship of a *neighbor as seen from a local
//!   AS* ("my customer", "my peer", …). This is what routing policy and
//!   decision classification reason about.
//! * [`EdgeRel`] — the label on an undirected edge of the AS graph in
//!   canonical orientation, as found in CAIDA-style topology files.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Relationship of a neighbor from the local AS's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Relationship {
    /// The neighbor pays the local AS for transit (revenue).
    Customer,
    /// Same organization; routes are exchanged as if internal.
    Sibling,
    /// Settlement-free exchange of customer routes.
    Peer,
    /// The local AS pays the neighbor for transit (cost).
    Provider,
}

impl Relationship {
    /// Gao–Rexford preference rank: lower is preferred (cheaper).
    ///
    /// Sibling routes are ranked alongside customer routes: the paper (§4.2)
    /// marks decisions routed via a sibling as satisfying the *Best*
    /// condition, and organizations do not charge themselves.
    pub fn rank(self) -> u8 {
        match self {
            Relationship::Customer | Relationship::Sibling => 0,
            Relationship::Peer => 1,
            Relationship::Provider => 2,
        }
    }

    /// The same relationship seen from the other side of the link.
    pub fn reverse(self) -> Relationship {
        match self {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
            Relationship::Sibling => Relationship::Sibling,
        }
    }

    /// Gao–Rexford export rule: may a route learned over `self` be exported
    /// to a neighbor with relationship `to`?
    ///
    /// Customer (and sibling) routes go to everyone; peer and provider routes
    /// go only to customers (and siblings, which behave as the same network).
    pub fn exportable_to(self, to: Relationship) -> bool {
        match self {
            Relationship::Customer | Relationship::Sibling => true,
            Relationship::Peer | Relationship::Provider => {
                matches!(to, Relationship::Customer | Relationship::Sibling)
            }
        }
    }
}

impl fmt::Display for Relationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relationship::Customer => "customer",
            Relationship::Sibling => "sibling",
            Relationship::Peer => "peer",
            Relationship::Provider => "provider",
        })
    }
}

/// Label on an AS-graph edge `(a, b)` in canonical orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum EdgeRel {
    /// `a` is a customer of `b` (CAIDA "-1" with a listed first).
    CustomerToProvider,
    /// Settlement-free peering (CAIDA "0").
    PeerToPeer,
    /// Same organization (CAIDA "1" in sibling-annotated files).
    SiblingToSibling,
}

impl EdgeRel {
    /// Relationship of `b` as seen from `a`, given this edge label on `(a,b)`.
    pub fn from_a(self) -> Relationship {
        match self {
            EdgeRel::CustomerToProvider => Relationship::Provider,
            EdgeRel::PeerToPeer => Relationship::Peer,
            EdgeRel::SiblingToSibling => Relationship::Sibling,
        }
    }

    /// Relationship of `a` as seen from `b`.
    pub fn from_b(self) -> Relationship {
        self.from_a().reverse()
    }

    /// The label of the reversed edge `(b, a)`.
    pub fn flipped(self) -> (EdgeRel, bool) {
        match self {
            EdgeRel::CustomerToProvider => (EdgeRel::CustomerToProvider, true),
            other => (other, false),
        }
    }

    /// CAIDA serial-1 numeric code (`-1` c2p, `0` p2p, `1` sibling).
    pub fn caida_code(self) -> i8 {
        match self {
            EdgeRel::CustomerToProvider => -1,
            EdgeRel::PeerToPeer => 0,
            EdgeRel::SiblingToSibling => 1,
        }
    }

    /// Parses a CAIDA serial-1 numeric code.
    pub fn from_caida_code(code: i8) -> Option<EdgeRel> {
        match code {
            -1 => Some(EdgeRel::CustomerToProvider),
            0 => Some(EdgeRel::PeerToPeer),
            1 => Some(EdgeRel::SiblingToSibling),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_prefers_customer_routes() {
        assert!(Relationship::Customer.rank() < Relationship::Peer.rank());
        assert!(Relationship::Peer.rank() < Relationship::Provider.rank());
        assert_eq!(Relationship::Sibling.rank(), Relationship::Customer.rank());
    }

    #[test]
    fn reverse_is_involutive() {
        for r in [
            Relationship::Customer,
            Relationship::Peer,
            Relationship::Provider,
            Relationship::Sibling,
        ] {
            assert_eq!(r.reverse().reverse(), r);
        }
    }

    #[test]
    fn gao_rexford_export_matrix() {
        use Relationship::*;
        // Customer routes are exported to everyone.
        for to in [Customer, Peer, Provider, Sibling] {
            assert!(Customer.exportable_to(to), "customer route to {to}");
        }
        // Peer/provider routes only to customers and siblings.
        for from in [Peer, Provider] {
            assert!(from.exportable_to(Customer));
            assert!(from.exportable_to(Sibling));
            assert!(!from.exportable_to(Peer));
            assert!(!from.exportable_to(Provider));
        }
    }

    #[test]
    fn edge_rel_views_are_consistent() {
        let e = EdgeRel::CustomerToProvider;
        assert_eq!(e.from_a(), Relationship::Provider); // a pays b
        assert_eq!(e.from_b(), Relationship::Customer);
        assert_eq!(EdgeRel::PeerToPeer.from_a(), Relationship::Peer);
        assert_eq!(EdgeRel::SiblingToSibling.from_b(), Relationship::Sibling);
    }

    #[test]
    fn caida_codes_roundtrip() {
        for e in [
            EdgeRel::CustomerToProvider,
            EdgeRel::PeerToPeer,
            EdgeRel::SiblingToSibling,
        ] {
            assert_eq!(EdgeRel::from_caida_code(e.caida_code()), Some(e));
        }
        assert_eq!(EdgeRel::from_caida_code(7), None);
    }
}
