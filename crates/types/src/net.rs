//! IPv4 addresses and CIDR prefixes.
//!
//! The study is prefix-centric: BGP announces prefixes, prefix-specific
//! policies (§4.3 of the paper) are keyed on them, and the data plane maps
//! hop IPs back to origin prefixes. We use a compact `u32`-backed
//! representation rather than `std::net::Ipv4Addr` so prefixes can be used
//! as ordered map keys and longest-prefix matching is a couple of shifts.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address backed by its 32-bit big-endian integer value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Returns the four octets most-significant first.
    pub const fn octets(self) -> [u8; 4] {
        [
            (self.0 >> 24) as u8,
            (self.0 >> 16) as u8,
            (self.0 >> 8) as u8,
            self.0 as u8,
        ]
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Error returned when parsing an address or prefix from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNetError(pub String);

impl fmt::Display for ParseNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address or prefix: {}", self.0)
    }
}

impl std::error::Error for ParseNetError {}

impl FromStr for Ipv4 {
    type Err = ParseNetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for slot in &mut octets {
            let part = parts.next().ok_or_else(|| ParseNetError(s.into()))?;
            *slot = part.parse().map_err(|_| ParseNetError(s.into()))?;
        }
        if parts.next().is_some() {
            return Err(ParseNetError(s.into()));
        }
        Ok(Ipv4::new(octets[0], octets[1], octets[2], octets[3]))
    }
}

/// An IPv4 CIDR prefix. The base address is always stored masked, so two
/// `Prefix` values compare equal iff they denote the same address block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prefix {
    /// Network address (host bits zeroed).
    pub base: Ipv4,
    /// Prefix length in bits, `0..=32`.
    pub len: u8,
}

impl Prefix {
    /// Builds a prefix, masking off host bits. Panics if `len > 32`.
    pub fn new(base: Ipv4, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        Prefix {
            base: Ipv4(base.0 & Self::mask(len)),
            len,
        }
    }

    /// Bit mask selecting the network part of a `len`-bit prefix.
    #[inline]
    pub const fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - len)
        }
    }

    /// Whether `ip` falls inside this prefix.
    #[inline]
    pub fn contains(&self, ip: Ipv4) -> bool {
        ip.0 & Self::mask(self.len) == self.base.0
    }

    /// Whether `other` is fully contained in `self` (i.e. `self` is a
    /// covering aggregate of `other`).
    pub fn covers(&self, other: &Prefix) -> bool {
        other.len >= self.len && self.contains(other.base)
    }

    /// Number of addresses in the prefix (as u64 so /0 does not overflow).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    /// The `i`-th host address inside the prefix. Panics if out of range.
    pub fn addr(&self, i: u64) -> Ipv4 {
        assert!(
            i < self.size(),
            "host index {i} out of range for /{}",
            self.len
        );
        Ipv4(self.base.0 + i as u32)
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.base, self.len)
    }
}

impl FromStr for Prefix {
    type Err = ParseNetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (ip, len) = s.split_once('/').ok_or_else(|| ParseNetError(s.into()))?;
        let base: Ipv4 = ip.parse()?;
        let len: u8 = len.parse().map_err(|_| ParseNetError(s.into()))?;
        if len > 32 {
            return Err(ParseNetError(s.into()));
        }
        Ok(Prefix::new(base, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let p: Prefix = "10.1.2.0/24".parse().unwrap();
        assert_eq!(p.to_string(), "10.1.2.0/24");
        assert_eq!(p.base, Ipv4::new(10, 1, 2, 0));
        assert_eq!(p.len, 24);
    }

    #[test]
    fn base_is_masked() {
        let p = Prefix::new(Ipv4::new(10, 1, 2, 3), 24);
        assert_eq!(p.base, Ipv4::new(10, 1, 2, 0));
        assert_eq!(p, "10.1.2.0/24".parse().unwrap());
    }

    #[test]
    fn contains_and_covers() {
        let p: Prefix = "192.0.2.0/24".parse().unwrap();
        assert!(p.contains(Ipv4::new(192, 0, 2, 255)));
        assert!(!p.contains(Ipv4::new(192, 0, 3, 0)));
        let sub: Prefix = "192.0.2.128/25".parse().unwrap();
        assert!(p.covers(&sub));
        assert!(!sub.covers(&p));
        assert!(p.covers(&p));
    }

    #[test]
    fn size_and_addr() {
        let p: Prefix = "10.0.0.0/30".parse().unwrap();
        assert_eq!(p.size(), 4);
        assert_eq!(p.addr(3), Ipv4::new(10, 0, 0, 3));
        let all: Prefix = "0.0.0.0/0".parse().unwrap();
        assert_eq!(all.size(), 1 << 32);
    }

    #[test]
    fn bad_parses_rejected() {
        assert!("10.0.0/24".parse::<Prefix>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.256/8".parse::<Prefix>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4>().is_err());
    }

    proptest! {
        #[test]
        fn prefix_display_parse_roundtrip(base in any::<u32>(), len in 0u8..=32) {
            let p = Prefix::new(Ipv4(base), len);
            let back: Prefix = p.to_string().parse().unwrap();
            prop_assert_eq!(p, back);
        }

        #[test]
        fn contains_agrees_with_addr(base in any::<u32>(), len in 8u8..=32, i in any::<u64>()) {
            let p = Prefix::new(Ipv4(base), len);
            let i = i % p.size();
            prop_assert!(p.contains(p.addr(i)));
        }

        #[test]
        fn covers_is_reflexive_and_antisymmetric(base in any::<u32>(), la in 1u8..=32, lb in 1u8..=32) {
            let a = Prefix::new(Ipv4(base), la);
            let b = Prefix::new(Ipv4(base), lb);
            prop_assert!(a.covers(&a));
            if a != b {
                prop_assert!(!(a.covers(&b) && b.covers(&a)));
            }
        }
    }
}
