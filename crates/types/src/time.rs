//! Logical time.
//!
//! The reproduction never consults wall-clock time: route age (a BGP
//! tie-breaker the paper finds responsible for ~2% of decisions), the
//! 90-minute PEERING announcement rounds, the 15-minute collector snapshots,
//! and the five monthly CAIDA topology snapshots are all driven by a single
//! logical clock measured in seconds since the start of the experiment.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Sub};

/// A logical timestamp in seconds since experiment start.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The experiment epoch.
    pub const ZERO: Timestamp = Timestamp(0);

    /// Builds a timestamp a number of minutes after the epoch.
    pub const fn from_minutes(m: u64) -> Self {
        Timestamp(m * 60)
    }

    /// Seconds elapsed since the epoch.
    pub const fn secs(self) -> u64 {
        self.0
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: u64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;
    fn sub(self, rhs: Timestamp) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_minutes(90);
        assert_eq!(t.secs(), 5400);
        assert_eq!((t + 60) - t, 60);
        assert_eq!(Timestamp::ZERO.to_string(), "t+0s");
    }

    #[test]
    fn ordering_is_by_value() {
        assert!(Timestamp(1) < Timestamp(2));
        assert_eq!(Timestamp::default(), Timestamp::ZERO);
    }
}
