#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Primitive vocabulary types shared by every crate in the workspace.
//!
//! This crate deliberately contains **no logic beyond the types themselves**:
//! autonomous-system numbers, IPv4 addresses and prefixes, business
//! relationships, geography, and the handful of identifier newtypes used
//! across the topology, simulator, and analysis crates.
//!
//! Everything here is `Copy` or cheap to clone, totally ordered where a
//! deterministic iteration order matters (the whole reproduction is a pure
//! function of its seed), and serde-serializable so experiment outputs can be
//! exported as JSON.

pub mod asn;
pub mod error;
pub mod geo;
pub mod net;
pub mod rel;
pub mod time;

pub use asn::{AsType, Asn, OrgId};
pub use error::Error;
pub use geo::{CityId, Continent, CountryId};
pub use net::{Ipv4, Prefix};
pub use rel::{EdgeRel, Relationship};
pub use time::Timestamp;
