//! Sweep invariants: the Monte-Carlo layer adds sampling, never
//! semantics.
//!
//! * **0% adoption is the undefended engine**: a sweep at adoption 0.0
//!   renders byte-identical CSV to replaying each cell's attack as a
//!   plain [`Delta::Hijack`] on an undefended cold sim — the empty
//!   [`DefensePlan`] short-circuits to the exact fast path.
//! * **100% ROV kills origin forgery**: with every AS validating, the
//!   only hijacked AS in any origin-forgery or subprefix cell is the
//!   attacker itself.
//! * **Scheduling never leaks into output**: rayon and sequential
//!   runners render byte-identical CSV for the same seed (proptest over
//!   seeds), and the same seed twice is byte-identical (determinism).

use ir_bgp::{ActivationOrder, Announcement, PrefixSim, SimContext};
use ir_scenarios::scenario::{classify, T_ANNOUNCE, T_ATTACK};
use ir_scenarios::{
    plan_cells, run_sweep, run_sweep_sequential, sweep_to_csv, sweep_to_json, AttackKind,
    DefenseKind, HijackScenario, SweepConfig, SweepRow,
};
use ir_topology::{GeneratorConfig, World};
use std::sync::Arc;

fn tiny(seed: u64) -> World {
    GeneratorConfig::tiny().build(seed)
}

fn config(seed: u64, fractions: Vec<f64>, attacks: Vec<AttackKind>) -> SweepConfig {
    SweepConfig {
        seed,
        fractions,
        trials: 3,
        attacks,
        defense: DefenseKind::Rov,
        order: ActivationOrder::WaveExact,
    }
}

#[test]
fn zero_adoption_sweep_matches_plain_delta_replay_byte_for_byte() {
    let world = tiny(11);
    let cfg = config(
        7,
        vec![0.0],
        vec![
            AttackKind::OriginForgery,
            AttackKind::ForgedOrigin {
                stealth: false,
                poison: vec![],
            },
            AttackKind::ForgedOrigin {
                stealth: true,
                poison: vec![],
            },
        ],
    );

    // Replay every planned cell through the raw engine: undefended cold
    // sim, attack applied as a wire-shaped `Delta::Hijack`, no
    // DefensePlan anywhere near it.
    let rows: Vec<SweepRow> = plan_cells(&world, &cfg)
        .iter()
        .map(|cell| {
            let scenario = HijackScenario {
                victim: cell.victim,
                prefix: cell.prefix,
                attacker: cell.attacker,
                kind: cell.attack.clone(),
            };
            let ctx = SimContext::shared(&world);
            let mut sim = PrefixSim::with_context_ordered(ctx, cell.prefix, cfg.order);
            sim.announce(Announcement::plain(cell.victim, cell.prefix), T_ANNOUNCE);
            let delta = scenario.as_delta().expect("exact-prefix attack");
            sim.apply_delta(&delta, T_ATTACK);
            let outcome = classify(&scenario, &sim, None);
            SweepRow {
                adoption: cell.adoption,
                trial: cell.trial,
                attack: cell.attack.name(),
                attacker: cell.attacker,
                victim: cell.victim,
                defense: cfg.defense.name(),
                n: outcome.len(),
                legitimate: outcome.legitimate,
                hijacked: outcome.hijacked,
                disconnected: outcome.disconnected,
            }
        })
        .collect();

    let swept = run_sweep(&world, &cfg);
    assert_eq!(sweep_to_csv(&swept), sweep_to_csv(&rows));
}

#[test]
fn full_rov_adoption_blocks_every_origin_forgery() {
    use ir_bgp::DefensePlan;
    use ir_scenarios::AsOutcome;

    for world_seed in [3u64, 11] {
        let world = tiny(world_seed);
        let cfg = config(
            5,
            vec![1.0],
            vec![AttackKind::OriginForgery, AttackKind::SubprefixHijack],
        );

        let rows = run_sweep(&world, &cfg);
        assert_eq!(rows.len(), cfg.cells());
        for r in &rows {
            if r.attack == "origin-forgery" {
                // The only "hijacked" AS is the attacker originating the
                // forgery to itself.
                assert_eq!(
                    r.hijacked, 1,
                    "world {world_seed}: {} cell trial {} leaked past full ROV",
                    r.attack, r.trial
                );
            }
        }

        // Node-level form of the claim, per attack. ROV is a
        // control-plane filter, so what it guarantees differs by rung:
        //
        // * origin forgery — the forged route never installs beyond the
        //   attacker, so nobody else is captured. ASes whose baseline
        //   path avoided the attacker keep it verbatim (losing an
        //   alternative never changes a BGP best path); ASes that relied
        //   on the attacker for *transit* lose that path when the
        //   attacker swaps in its forged origination, and either reroute
        //   or go dark — ROV saves them from capture, not from losing
        //   the route.
        // * subprefix — propagation is blocked (the more-specific
        //   installs only at the attacker), but the attacker's own FIB
        //   still prefers its more-specific, so ASes whose *baseline*
        //   forwarding path transits the attacker are captured anyway.
        //   ROV confines the hijack to the attacker's on-path set; it
        //   cannot shrink it further.
        let ext = cfg.defense.build(&world);
        for cell in plan_cells(&world, &cfg) {
            let ctx = SimContext::shared(&world);
            let mut baseline =
                PrefixSim::with_context_ordered(Arc::clone(&ctx), cell.prefix, cfg.order);
            baseline.announce(Announcement::plain(cell.victim, cell.prefix), T_ANNOUNCE);

            let mut plan = DefensePlan::for_world(&world);
            if let Some(id) = plan.register(Arc::clone(&ext)) {
                plan.adopt_all(id);
            }
            let scenario = HijackScenario {
                victim: cell.victim,
                prefix: cell.prefix,
                attacker: cell.attacker,
                kind: cell.attack.clone(),
            };
            let run = scenario.run(&ctx, cfg.order, Some(Arc::new(plan)));

            let attacker_idx = world
                .graph
                .index_of(cell.attacker)
                .expect("attacker in world");
            let n = world.graph.len();

            // Baseline walk per node: does it reach the victim, and does
            // it pass through the attacker on the way?
            let walk = |start: usize| -> (bool, bool) {
                let mut cur = start;
                let mut through_attacker = cur == attacker_idx;
                for _ in 0..=n {
                    match baseline.next_hop(cur) {
                        Some((next, _)) => {
                            cur = next;
                            through_attacker |= cur == attacker_idx;
                        }
                        None => return (baseline.best(cur).is_some(), through_attacker),
                    }
                }
                (false, through_attacker)
            };

            match cell.attack {
                AttackKind::OriginForgery => {
                    assert_eq!(run.outcome.hijacked_nodes(), vec![attacker_idx]);
                    for i in 0..n {
                        if i == attacker_idx {
                            continue;
                        }
                        let (reaches, through_attacker) = walk(i);
                        if through_attacker {
                            assert_ne!(
                                run.outcome.outcomes[i],
                                AsOutcome::Hijacked,
                                "world {world_seed}: transit customer {i} of the \
                                 attacker captured despite full ROV"
                            );
                        } else {
                            let expected = if reaches {
                                AsOutcome::Legitimate
                            } else {
                                AsOutcome::Disconnected
                            };
                            assert_eq!(
                                run.outcome.outcomes[i], expected,
                                "world {world_seed}: node {i} off the attacker's \
                                 path changed fate under full ROV"
                            );
                        }
                    }
                }
                AttackKind::SubprefixHijack => {
                    // Control plane: the more-specific installed only at
                    // the attacker.
                    let attack_sim = run.attack_sim.as_ref().expect("subprefix attack sim");
                    for i in 0..n {
                        assert_eq!(
                            attack_sim.best(i).is_some(),
                            i == attacker_idx,
                            "world {world_seed}: subprefix route leaked to node {i}"
                        );
                    }
                    // Forwarding plane: captured == attacker + its
                    // baseline on-path set, nothing else.
                    for i in 0..n {
                        let (reaches, through_attacker) = walk(i);
                        let expected = if i == attacker_idx || (reaches && through_attacker) {
                            AsOutcome::Hijacked
                        } else if reaches {
                            AsOutcome::Legitimate
                        } else {
                            AsOutcome::Disconnected
                        };
                        assert_eq!(
                            run.outcome.outcomes[i], expected,
                            "world {world_seed}: node {i} outside the on-path capture set"
                        );
                    }
                }
                _ => unreachable!("grid only runs origin-forgery and subprefix"),
            }
        }
    }
}

#[test]
fn same_seed_runs_are_deterministic() {
    let world = tiny(11);
    let cfg = config(42, vec![0.0, 0.5], vec![AttackKind::OriginForgery]);
    let a = run_sweep(&world, &cfg);
    let b = run_sweep(&world, &cfg);
    assert_eq!(sweep_to_csv(&a), sweep_to_csv(&b));
    assert_eq!(sweep_to_json(&a), sweep_to_json(&b));
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Rayon is a pure throughput choice: for any seed and fraction
        /// grid, the parallel and sequential runners render identical
        /// bytes.
        #[test]
        fn rayon_and_sequential_sweeps_render_identical_csv(
            sweep_seed in 0u64..1000,
            world_seed in 1u64..4,
            stealth in any::<bool>(),
        ) {
            let world = tiny(world_seed);
            let cfg = config(
                sweep_seed,
                vec![0.0, 0.3, 1.0],
                vec![
                    AttackKind::OriginForgery,
                    AttackKind::ForgedOrigin { stealth, poison: vec![] },
                ],
            );
            let par = run_sweep(&world, &cfg);
            let seq = run_sweep_sequential(&world, &cfg);
            prop_assert_eq!(sweep_to_csv(&par), sweep_to_csv(&seq));
            prop_assert_eq!(sweep_to_json(&par), sweep_to_json(&seq));
        }
    }
}
