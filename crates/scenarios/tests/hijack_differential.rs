//! Differential proof that the scenario layer is sugar over the engine,
//! plus gadget fixtures pinning each defense individually.
//!
//! * **Sugar, not a second engine**: [`HijackScenario::run`] must produce
//!   exactly the state a hand-rolled engine replay produces — announce
//!   at `T_ANNOUNCE`, [`PrefixSim::hijack`] at `T_ATTACK` — route for
//!   route, installation ages included, for every attack kind.
//! * **Order independence on certified worlds**: the same scenario under
//!   [`ActivationOrder::Free`] (certified by `ir-audit`) and
//!   [`ActivationOrder::WaveExact`] must agree route-for-route, ages
//!   included, defended or not — hijack originations and defense
//!   filters must not reopen the free-order hole.
//! * **Gadget fixtures**: a 5-AS hand-built world where each defense's
//!   one catch — ROV vs origin forgery, enforce-first-AS vs stealth,
//!   peerlock-lite vs poison-wrapped forgery — is pinned along with the
//!   attack variant that defeats it.

use ir_audit::audit_world;
use ir_bgp::{ActivationOrder, Announcement, DefensePlan, PolicyExtension, PrefixSim, SimContext};
use ir_scenarios::{
    AsOutcome, AttackKind, EnforceFirstAs, HijackScenario, PeerlockLite, Roa, RoaRegistry, Rov,
    ScenarioRun,
};
use ir_topology::graph::{AsNode, AsRole, NodeIdx};
use ir_topology::policy::PolicySpec;
use ir_topology::{GeneratorConfig, LinkKind, World};
use ir_types::{Asn, CityId, CountryId, Ipv4, OrgId, Prefix, Relationship};
use std::collections::BTreeSet;
use std::sync::Arc;

use ir_scenarios::scenario::{T_ANNOUNCE, T_ATTACK};

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Every attack rung, poisonless and poisoned.
fn all_attacks() -> Vec<AttackKind> {
    vec![
        AttackKind::OriginForgery,
        AttackKind::SubprefixHijack,
        AttackKind::ForgedOrigin {
            stealth: false,
            poison: vec![],
        },
        AttackKind::ForgedOrigin {
            stealth: true,
            poison: vec![],
        },
    ]
}

/// A plan where every AS adopts `ext`.
fn adopt_everywhere(world: &World, ext: Arc<dyn PolicyExtension>) -> Arc<DefensePlan> {
    let mut plan = DefensePlan::for_world(world);
    let id = plan.register(ext).expect("register");
    plan.adopt_all(id);
    Arc::new(plan)
}

/// A plan where exactly `nodes` adopt `ext`.
fn adopt_at(world: &World, ext: Arc<dyn PolicyExtension>, nodes: &[NodeIdx]) -> Arc<DefensePlan> {
    let mut plan = DefensePlan::for_world(world);
    let id = plan.register(ext).expect("register");
    for &n in nodes {
        plan.adopt(n, id);
    }
    Arc::new(plan)
}

/// Asserts two sims agree route-for-route — full [`ir_bgp::Route`]
/// equality, installation ages included.
fn assert_routes_equal(a: &PrefixSim<'_>, b: &PrefixSim<'_>, tag: &str) {
    let n = a.world().graph.len();
    for x in 0..n {
        assert_eq!(
            a.best(x),
            b.best(x),
            "{tag}: route divergence at {}",
            a.world().graph.asn(x)
        );
    }
}

/// First AS (by node order) originating a prefix, plus that prefix.
fn first_origin(world: &World) -> (Asn, Prefix) {
    world
        .graph
        .nodes()
        .iter()
        .find_map(|n| n.prefixes.first().map(|&p| (n.asn, p)))
        .expect("world originates something")
}

/// An AS far from `avoid` in node order — the attacker pick.
fn some_other_as(world: &World, avoid: Asn) -> Asn {
    let g = &world.graph;
    let last = g.asn(g.len() - 1);
    if last != avoid {
        last
    } else {
        g.asn(g.len() - 2)
    }
}

// ---------------------------------------------------------------------------
// Differential: scenario == manual engine replay
// ---------------------------------------------------------------------------

#[test]
fn scenario_run_equals_manual_engine_replay() {
    for seed in [1u64, 2, 3] {
        let world = GeneratorConfig::tiny().build(seed);
        let (victim, prefix) = first_origin(&world);
        let attacker = some_other_as(&world, victim);
        for kind in all_attacks() {
            let scenario = HijackScenario {
                victim,
                prefix,
                attacker,
                kind: kind.clone(),
            };
            let ctx = SimContext::shared(&world);
            let run = scenario.run(&ctx, ActivationOrder::WaveExact, None);

            // Hand-rolled replay of the exact same engine events.
            let (forged_origin, poison, stealth) = match &kind {
                AttackKind::OriginForgery | AttackKind::SubprefixHijack => (None, vec![], false),
                AttackKind::ForgedOrigin { stealth, poison } => {
                    (Some(victim), poison.clone(), *stealth)
                }
            };
            let ctx2 = SimContext::shared(&world);
            let mut manual_victim = PrefixSim::with_context_ordered(
                Arc::clone(&ctx2),
                prefix,
                ActivationOrder::WaveExact,
            );
            manual_victim.announce(Announcement::plain(victim, prefix), T_ANNOUNCE);
            let attack_prefix = scenario.attack_prefix();
            let tag = format!("seed {seed} kind {}", kind.name());
            if attack_prefix == prefix {
                manual_victim.hijack(attacker, forged_origin, &poison, stealth, T_ATTACK);
                assert!(run.attack_sim.is_none(), "{tag}: unexpected attack sim");
            } else {
                let mut manual_attack = PrefixSim::with_context_ordered(
                    Arc::clone(&ctx2),
                    attack_prefix,
                    ActivationOrder::WaveExact,
                );
                manual_attack.hijack(attacker, forged_origin, &poison, stealth, T_ATTACK);
                let attack_sim = run.attack_sim.as_ref().expect("subprefix attack sim");
                assert_routes_equal(attack_sim, &manual_attack, &tag);
            }
            assert_routes_equal(&run.victim_sim, &manual_victim, &tag);
        }
    }
}

// ---------------------------------------------------------------------------
// Differential: Free (certified) vs WaveExact, defended and not
// ---------------------------------------------------------------------------

#[test]
fn free_order_agrees_with_wave_exact_on_certified_worlds() {
    for seed in [2u64, 4] {
        let world = GeneratorConfig::certifiably_safe().build(seed);
        assert!(
            audit_world(&world).certificate.certified,
            "seed {seed} must certify"
        );
        let (victim, prefix) = first_origin(&world);
        let attacker = some_other_as(&world, victim);
        let registry = Arc::new(RoaRegistry::from_world(&world));
        let defense_plans: Vec<(&str, Option<Arc<DefensePlan>>)> = vec![
            ("undefended", None),
            (
                "rov",
                Some(adopt_everywhere(
                    &world,
                    Arc::new(Rov::new(Arc::clone(&registry))),
                )),
            ),
            (
                "enforce-first-as",
                Some(adopt_everywhere(&world, Arc::new(EnforceFirstAs))),
            ),
            (
                "peerlock-lite",
                Some(adopt_everywhere(
                    &world,
                    Arc::new(PeerlockLite::top_transit(&world, 8)),
                )),
            ),
        ];
        for kind in all_attacks() {
            for (dname, plan) in &defense_plans {
                let scenario = HijackScenario {
                    victim,
                    prefix,
                    attacker,
                    kind: kind.clone(),
                };
                let ctx = SimContext::shared(&world);
                let wave = scenario.run(&ctx, ActivationOrder::WaveExact, plan.clone());
                let ctx = SimContext::shared(&world);
                let free = scenario.run(&ctx, ActivationOrder::Free, plan.clone());
                let tag = format!("seed {seed} kind {} defense {dname}", kind.name());
                assert_routes_equal(&wave.victim_sim, &free.victim_sim, &tag);
                match (&wave.attack_sim, &free.attack_sim) {
                    (Some(w), Some(f)) => assert_routes_equal(w, f, &tag),
                    (None, None) => {}
                    _ => panic!("{tag}: attack sim presence diverged"),
                }
                assert_eq!(
                    wave.outcome, free.outcome,
                    "{tag}: outcome classification diverged"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Gadget fixtures: 5 ASes, each defense pinned individually.
//
//          4  (transit top; protected by peerlock)
//         / \
//        2   3        4 is provider of 2 and 3
//        |   |
//        1   5        2 is provider of 1 (victim); 3 of 5 (attacker)
// ---------------------------------------------------------------------------

const VICTIM: Asn = Asn(1);
const ATTACKER: Asn = Asn(5);
const BACKBONE: Asn = Asn(4);

fn gadget() -> World {
    let mut world = World::default();
    let city = CityId(0);
    for i in 1u32..=5 {
        world.graph.add_node(AsNode {
            asn: Asn(i),
            org: OrgId(i),
            home_country: CountryId(0),
            presence: vec![city],
            role: AsRole::Transit,
            prefixes: vec![Prefix::new(Ipv4(i << 24 | 10 << 16), 16)],
        });
    }
    let provider = |w: &mut World, low: u32, high: u32| {
        w.graph.add_link(
            (low - 1) as usize,
            (high - 1) as usize,
            Relationship::Provider,
            vec![city],
            LinkKind::Normal,
        );
    };
    provider(&mut world, 1, 2);
    provider(&mut world, 2, 4);
    provider(&mut world, 3, 4);
    provider(&mut world, 5, 3);
    world.policies = vec![PolicySpec::default(); 5];
    world
}

fn victim_prefix(world: &World) -> Prefix {
    world.graph.nodes()[0].prefixes[0]
}

fn run_gadget(
    world: &World,
    kind: AttackKind,
    defenses: Option<Arc<DefensePlan>>,
) -> ScenarioRun<'_> {
    let scenario = HijackScenario {
        victim: VICTIM,
        prefix: victim_prefix(world),
        attacker: ATTACKER,
        kind,
    };
    let ctx = SimContext::shared(world);
    scenario.run(&ctx, ActivationOrder::WaveExact, defenses)
}

fn node(world: &World, asn: Asn) -> NodeIdx {
    world.graph.index_of(asn).expect("gadget AS")
}

#[test]
fn gadget_rov_blocks_origin_forgery_but_not_forged_origin() {
    let world = gadget();
    let registry = Arc::new(RoaRegistry::from_world(&world));

    // Undefended origin forgery captures the attacker's provider (AS3
    // prefers the short customer-tier forgery over its provider route).
    let run = run_gadget(&world, AttackKind::OriginForgery, None);
    assert_eq!(
        run.outcome.hijacked_nodes(),
        vec![node(&world, Asn(3)), node(&world, ATTACKER)]
    );
    assert_eq!(run.outcome.disconnected, 0);

    // Full ROV contains it to the attacker itself.
    let rov = adopt_everywhere(&world, Arc::new(Rov::new(Arc::clone(&registry))));
    let run = run_gadget(&world, AttackKind::OriginForgery, Some(rov.clone()));
    assert_eq!(run.outcome.hijacked_nodes(), vec![node(&world, ATTACKER)]);
    assert_eq!(run.outcome.legitimate, 4);

    // ...and full ROV also kills the subprefix hijack (max_len pins the
    // announced length), where undefended it captures the entire world.
    let run = run_gadget(&world, AttackKind::SubprefixHijack, None);
    assert_eq!(run.outcome.hijacked, 5, "subprefix captures everyone");
    let run = run_gadget(&world, AttackKind::SubprefixHijack, Some(rov));
    assert_eq!(run.outcome.hijacked_nodes(), vec![node(&world, ATTACKER)]);

    // But a forged-origin path validates: ROV at 100% is defeated.
    let rov = adopt_everywhere(&world, Arc::new(Rov::new(registry)));
    let run = run_gadget(
        &world,
        AttackKind::ForgedOrigin {
            stealth: false,
            poison: vec![],
        },
        Some(rov),
    );
    assert_eq!(
        run.outcome.hijacked_nodes(),
        vec![node(&world, Asn(3)), node(&world, ATTACKER)]
    );
}

#[test]
fn gadget_enforce_first_as_blocks_stealth_forgery_only() {
    let world = gadget();
    let stealth = AttackKind::ForgedOrigin {
        stealth: true,
        poison: vec![],
    };

    // Undefended, the stealth path `[victim]` wins at the attacker's
    // provider like any short customer route.
    let run = run_gadget(&world, stealth.clone(), None);
    assert_eq!(
        run.outcome.hijacked_nodes(),
        vec![node(&world, Asn(3)), node(&world, ATTACKER)]
    );

    // Enforce-first-AS at the attacker's provider alone contains it: the
    // forged path's first hop (the victim) cannot match the session peer.
    let efa = adopt_at(&world, Arc::new(EnforceFirstAs), &[node(&world, Asn(3))]);
    let run = run_gadget(&world, stealth, Some(efa));
    assert_eq!(run.outcome.hijacked_nodes(), vec![node(&world, ATTACKER)]);
    assert_eq!(run.outcome.legitimate, 4);

    // The non-stealth variant keeps the attacker as first hop, so even
    // world-wide enforce-first-AS never fires.
    let efa = adopt_everywhere(&world, Arc::new(EnforceFirstAs));
    let run = run_gadget(
        &world,
        AttackKind::ForgedOrigin {
            stealth: false,
            poison: vec![],
        },
        Some(efa),
    );
    assert_eq!(
        run.outcome.hijacked_nodes(),
        vec![node(&world, Asn(3)), node(&world, ATTACKER)]
    );
}

#[test]
fn gadget_peerlock_lite_blocks_poison_wrapped_forgery() {
    let world = gadget();
    let poisoned = AttackKind::ForgedOrigin {
        stealth: false,
        poison: vec![BACKBONE],
    };
    let peerlock =
        || Arc::new(PeerlockLite::new(BTreeSet::from([BACKBONE]))) as Arc<dyn PolicyExtension>;

    // Undefended, the poison-wrapped forgery still takes the attacker's
    // provider (the backbone itself is immune via loop prevention — its
    // own ASN sits in the poison set).
    let run = run_gadget(&world, poisoned.clone(), None);
    assert_eq!(
        run.outcome.hijacked_nodes(),
        vec![node(&world, Asn(3)), node(&world, ATTACKER)]
    );

    // Peerlock-lite at the attacker's provider rejects the path: a
    // protected backbone ASN heard from a customer session.
    let plan = adopt_at(&world, peerlock(), &[node(&world, Asn(3))]);
    let run = run_gadget(&world, poisoned.clone(), Some(plan));
    assert_eq!(run.outcome.hijacked_nodes(), vec![node(&world, ATTACKER)]);
    assert_eq!(run.outcome.legitimate, 4);

    // Full adoption costs nothing legitimate: backbone paths still flow
    // downhill (provider sessions are exempt), and the poisoned forgery
    // stays contained.
    let plan = adopt_everywhere(&world, peerlock());
    let run = run_gadget(&world, poisoned, Some(plan.clone()));
    assert_eq!(run.outcome.hijacked_nodes(), vec![node(&world, ATTACKER)]);
    assert_eq!(run.outcome.legitimate, 4);

    // ...but an unpoisoned forgery sails through peerlock everywhere.
    let run = run_gadget(
        &world,
        AttackKind::ForgedOrigin {
            stealth: false,
            poison: vec![],
        },
        Some(plan),
    );
    assert_eq!(
        run.outcome.hijacked_nodes(),
        vec![node(&world, Asn(3)), node(&world, ATTACKER)]
    );
}

#[test]
fn gadget_outcomes_classify_every_as() {
    let world = gadget();
    // No attack interference at the victim or its provider: both still
    // reach the legitimate origin under plain origin forgery.
    let run = run_gadget(&world, AttackKind::OriginForgery, None);
    assert_eq!(run.outcome.len(), 5);
    assert_eq!(
        run.outcome.outcomes[node(&world, VICTIM)],
        AsOutcome::Legitimate
    );
    assert_eq!(
        run.outcome.outcomes[node(&world, Asn(2))],
        AsOutcome::Legitimate
    );
    assert_eq!(
        run.outcome.outcomes[node(&world, BACKBONE)],
        AsOutcome::Legitimate
    );
    assert_eq!(
        run.outcome.legitimate + run.outcome.hijacked + run.outcome.disconnected,
        5
    );
}

#[test]
fn explicit_roa_registry_drives_rov_verdicts() {
    // A registry authorizing a *different* origin turns even the
    // legitimate announcement invalid: full-ROV adopters drop it and the
    // world partitions around the victim. This pins that Rov consults
    // the registry rather than world ground truth.
    let world = gadget();
    let prefix = victim_prefix(&world);
    let rogue_registry = Arc::new(RoaRegistry::new(vec![Roa {
        prefix,
        origin: Asn(2),
        max_len: prefix.len,
    }]));
    let rov = adopt_everywhere(&world, Arc::new(Rov::new(rogue_registry)));
    let run = run_gadget(&world, AttackKind::OriginForgery, Some(rov));
    // Nobody imports the victim's (now "invalid") announcement or the
    // attacker's forgery: everyone but victim and attacker is cut off.
    assert_eq!(run.outcome.hijacked_nodes(), vec![node(&world, ATTACKER)]);
    assert_eq!(
        run.outcome.outcomes[node(&world, VICTIM)],
        AsOutcome::Legitimate
    );
    assert_eq!(run.outcome.disconnected, 3);
}
