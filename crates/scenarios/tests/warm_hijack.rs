//! Warm-path differential: hijacks served as [`Delta::Hijack`] through a
//! resident [`WhatIfEngine`] answer route-for-route identically —
//! installation ages included — to the cold [`HijackScenario::run`]
//! ground truth, with or without a [`DefensePlan`] installed.
//!
//! Also pins the safety interlock on defended worlds: a free-order
//! engine whose certifier returns `Revoked` or `Unknown` transparently
//! downgrades the query fork to wave-exact, and a `Preserved` verdict
//! (hijacks are certificate-neutral: they change which routes exist,
//! never how policy ranks them) keeps the free fast path — both proven
//! by exactness against the cold wave-exact replay.

use ir_audit::{audit_world, DeltaAuditor};
use ir_bgp::{
    ActivationOrder, CertificateDelta, DefensePlan, Delta, DeltaCertifier, PolicyExtension,
    PrefixSim, Route, SimContext, WhatIfEngine, WhatIfQuery,
};
use ir_scenarios::{AttackKind, DefenseKind, HijackScenario};
use ir_topology::{GeneratorConfig, World};
use ir_types::{Asn, Prefix};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Exact-prefix rungs of the attack ladder — the ones that map onto a
/// [`Delta::Hijack`] against the victim's resident sim
/// ([`HijackScenario::as_delta`]; subprefix targets a different prefix
/// and has no warm equivalent).
fn warm_attacks() -> Vec<AttackKind> {
    vec![
        AttackKind::OriginForgery,
        AttackKind::ForgedOrigin {
            stealth: false,
            poison: vec![],
        },
        AttackKind::ForgedOrigin {
            stealth: true,
            poison: vec![],
        },
    ]
}

/// A plan adopting `defense` at every AS, or `None` for the undefended
/// world.
fn full_plan(world: &World, defense: Option<DefenseKind>) -> Option<Arc<DefensePlan>> {
    let defense = defense?;
    let mut plan = DefensePlan::for_world(world);
    if let Some(id) = plan.register(defense.build(world)) {
        plan.adopt_all(id);
    }
    Some(Arc::new(plan))
}

/// First origin-bearing AS and its first prefix.
fn first_origin(world: &World) -> (Asn, Prefix) {
    let node = world
        .graph
        .nodes()
        .iter()
        .find(|n| !n.prefixes.is_empty())
        .expect("generated world has origins");
    (node.asn, node.prefixes[0])
}

/// An attacker distinct from `avoid`.
fn some_other_as(world: &World, avoid: Asn) -> Asn {
    world
        .graph
        .nodes()
        .iter()
        .rev()
        .map(|n| n.asn)
        .find(|&a| a != avoid)
        .expect("world has at least two ASes")
}

/// Every AS's warm route (diff overlay over the engine's base) must
/// equal the cold sim's exactly — full [`Route`] equality, ages
/// included.
fn assert_exact(
    world: &World,
    engine: &WhatIfEngine<'_>,
    prefix: Prefix,
    diffs: &[ir_bgp::RouteDiff],
    cold: &PrefixSim<'_>,
    tag: &str,
) {
    let by_asn: BTreeMap<Asn, &ir_bgp::RouteDiff> = diffs.iter().map(|d| (d.asn, d)).collect();
    for x in 0..world.graph.len() {
        let asn = world.graph.asn(x);
        let warm: Option<Route> = match by_asn.get(&asn) {
            Some(d) => d.after.clone(),
            None => engine.base_route(prefix, x),
        };
        assert_eq!(
            warm,
            cold.best(x),
            "{tag}: warm/cold divergence at AS {asn} for {prefix}"
        );
    }
}

/// Runs one attack both ways — warm [`Delta::Hijack`] query against a
/// resident engine, cold [`HijackScenario::run`] — and asserts route
/// identity. Returns the answer for verdict inspection.
fn run_both(
    world: &World,
    engine: &WhatIfEngine<'_>,
    scenario: &HijackScenario,
    defenses: Option<Arc<DefensePlan>>,
    tag: &str,
) -> ir_bgp::WhatIfAnswer {
    let delta = scenario.as_delta().expect("exact-prefix attack");
    let answer = engine
        .query(&WhatIfQuery::single(scenario.prefix, delta))
        .expect("prefix resident");
    assert!(answer.stats.converged, "{tag}: warm answer unconverged");

    let ctx = SimContext::shared(world);
    let cold = scenario.run(&ctx, ActivationOrder::WaveExact, defenses);
    assert!(
        cold.attack_sim.is_none(),
        "{tag}: exact-prefix attack must not spawn a subprefix sim"
    );
    assert_exact(
        world,
        engine,
        scenario.prefix,
        &answer.diffs,
        &cold.victim_sim,
        tag,
    );
    answer
}

#[test]
fn warm_hijack_query_agrees_with_cold_scenario() {
    for seed in [1u64, 2, 3] {
        let world = GeneratorConfig::tiny().build(seed);
        let (victim, prefix) = first_origin(&world);
        let attacker = some_other_as(&world, victim);
        for defense in [
            None,
            Some(DefenseKind::Rov),
            Some(DefenseKind::EnforceFirstAs),
        ] {
            let plan = full_plan(&world, defense);
            let engine = WhatIfEngine::with_order_defended(
                &world,
                &[prefix],
                ActivationOrder::WaveExact,
                plan.clone(),
            );
            assert!(engine.base_converged());
            for kind in warm_attacks() {
                let scenario = HijackScenario {
                    victim,
                    prefix,
                    attacker,
                    kind,
                };
                let tag = format!(
                    "seed {seed} defense {:?} attack {}",
                    defense.map(|d| d.name()),
                    scenario.kind.name()
                );
                let answer = run_both(&world, &engine, &scenario, plan.clone(), &tag);
                // Wave-exact engines never consult a certifier.
                assert!(answer.certificate.is_none(), "{tag}: unexpected verdict");
            }
        }
    }
}

#[test]
fn preserved_hijack_keeps_free_fast_path_on_defended_world() {
    let world = GeneratorConfig::certifiably_safe().build(2);
    let report = audit_world(&world);
    assert!(report.certificate.certified, "base world must certify");
    let (victim, prefix) = first_origin(&world);
    let attacker = some_other_as(&world, victim);

    let plan = full_plan(&world, Some(DefenseKind::Rov));
    let mut engine =
        WhatIfEngine::with_order_defended(&world, &[prefix], ActivationOrder::Free, plan.clone());
    assert!(engine.base_converged());
    engine.set_certifier(Box::new(DeltaAuditor::with_report(&world, report)));

    for kind in warm_attacks() {
        let scenario = HijackScenario {
            victim,
            prefix,
            attacker,
            kind,
        };
        let tag = format!("preserved attack {}", scenario.kind.name());
        let answer = run_both(&world, &engine, &scenario, plan.clone(), &tag);
        // Hijacks are routing events, not policy edits: the real auditor
        // must judge them certificate-neutral, keeping the free order.
        assert_eq!(
            answer.certificate,
            Some(CertificateDelta::Preserved),
            "{tag}: hijack delta must preserve the certificate"
        );
    }
}

/// A certifier pinned to one verdict — isolates the engine's downgrade
/// plumbing from the auditor's judgment.
struct FixedVerdict(CertificateDelta);

impl DeltaCertifier for FixedVerdict {
    fn audit_deltas(&self, _deltas: &[Delta]) -> CertificateDelta {
        self.0.clone()
    }
}

#[test]
fn revoked_and_unknown_verdicts_downgrade_defended_free_fork() {
    let world = GeneratorConfig::certifiably_safe().build(4);
    assert!(audit_world(&world).certificate.certified);
    let (victim, prefix) = first_origin(&world);
    let attacker = some_other_as(&world, victim);

    let verdicts = [
        CertificateDelta::Revoked {
            rule: "TEST-FORCED".to_string(),
            witness: "fixture verdict".to_string(),
        },
        CertificateDelta::Unknown,
    ];
    for verdict in verdicts {
        let plan = full_plan(&world, Some(DefenseKind::Rov));
        let mut engine = WhatIfEngine::with_order_defended(
            &world,
            &[prefix],
            ActivationOrder::Free,
            plan.clone(),
        );
        assert!(engine.base_converged());
        engine.set_certifier(Box::new(FixedVerdict(verdict.clone())));

        for kind in warm_attacks() {
            let scenario = HijackScenario {
                victim,
                prefix,
                attacker,
                kind,
            };
            let tag = format!("verdict {verdict} attack {}", scenario.kind.name());
            // The fork must run wave-exact (the cold side's order), so
            // exactness — ages included — is the observable downgrade.
            let answer = run_both(&world, &engine, &scenario, plan.clone(), &tag);
            assert_eq!(answer.certificate, Some(verdict.clone()), "{tag}");
        }
    }
}

/// Defense plans change the engine's import surface; make sure the
/// extension trait's default export hook composes too (a no-op extension
/// must leave warm answers untouched).
#[test]
fn noop_extension_leaves_warm_answers_identical_to_undefended() {
    #[derive(Debug)]
    struct AcceptAll;
    impl PolicyExtension for AcceptAll {
        fn name(&self) -> &'static str {
            "accept-all"
        }
    }

    let world = GeneratorConfig::tiny().build(2);
    let (victim, prefix) = first_origin(&world);
    let attacker = some_other_as(&world, victim);

    let mut plan = DefensePlan::for_world(&world);
    if let Some(id) = plan.register(Arc::new(AcceptAll)) {
        plan.adopt_all(id);
    }
    let defended = WhatIfEngine::with_order_defended(
        &world,
        &[prefix],
        ActivationOrder::WaveExact,
        Some(Arc::new(plan)),
    );
    let undefended = WhatIfEngine::with_order(&world, &[prefix], ActivationOrder::WaveExact);

    for kind in warm_attacks() {
        let scenario = HijackScenario {
            victim,
            prefix,
            attacker,
            kind,
        };
        let delta = scenario.as_delta().expect("exact-prefix attack");
        let q = WhatIfQuery::single(prefix, delta);
        let a = defended.query(&q).expect("prefix resident");
        let b = undefended.query(&q).expect("prefix resident");
        assert_eq!(a.diffs, b.diffs, "attack {}", scenario.kind.name());
    }
}
