//! Defense policies as engine [`PolicyExtension`]s.
//!
//! Each defense is a stateless import-side predicate the engine consults
//! for adopting ASes only (see [`ir_bgp::DefensePlan`]). They model the
//! three deployable mitigations the hijack literature keeps returning
//! to, each catching a different rung of the attacker-sophistication
//! ladder built into [`ir_bgp::hijack_origination`]:
//!
//! * [`Rov`] — route-origin validation: drops paths whose claimed origin
//!   is [`RouteOriginVerdict::Invalid`] against the ROA registry.
//!   Catches plain origin forgery (`[attacker]`) and subprefix hijacks
//!   (length past `max_len`), but not forged-origin paths.
//! * [`EnforceFirstAs`] — requires the first AS on a received path to be
//!   the session peer. Catches the *stealth* forged-origin hijack
//!   (`[victim]` sent by the attacker) at the attacker's own neighbors,
//!   where the forged path's first hop cannot match the session.
//! * [`PeerlockLite`] — the route-server-era heuristic: never accept a
//!   path that crosses a protected backbone AS from anyone but a
//!   provider (or the protected AS itself). Protected networks are
//!   bought from, not heard *through* peers and customers.

use crate::roa::{RoaRegistry, RouteOriginVerdict};
use ir_bgp::{ExtensionCheck, PolicyExtension};
use ir_topology::{AsRole, World};
use ir_types::{Asn, Relationship};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Route-origin validation against a [`RoaRegistry`].
///
/// Only `Invalid` is dropped: `NotFound` (unsigned space) is accepted,
/// matching deployed ROV.
#[derive(Debug, Clone)]
pub struct Rov {
    registry: Arc<RoaRegistry>,
}

impl Rov {
    /// ROV against `registry`.
    pub fn new(registry: Arc<RoaRegistry>) -> Rov {
        Rov { registry }
    }
}

impl PolicyExtension for Rov {
    fn name(&self) -> &'static str {
        "rov"
    }

    fn accept_import(&self, check: &ExtensionCheck<'_>) -> bool {
        match check.origin_asn() {
            Some(origin) => !matches!(
                self.registry.validate(check.prefix, origin),
                RouteOriginVerdict::Invalid
            ),
            // No sequence origin (pure AS-set path): nothing to validate.
            None => true,
        }
    }
}

/// Require the first AS of a received path to be the session peer
/// (RFC 4271 §6.3 `enforce-first-as`).
#[derive(Debug, Clone, Copy, Default)]
pub struct EnforceFirstAs;

impl PolicyExtension for EnforceFirstAs {
    fn name(&self) -> &'static str {
        "enforce-first-as"
    }

    fn accept_import(&self, check: &ExtensionCheck<'_>) -> bool {
        check.first_asn() == Some(check.peer_asn())
    }
}

/// Peerlock-lite: drop paths containing a protected (backbone) ASN
/// unless learned from a provider or from the protected AS itself.
#[derive(Debug, Clone)]
pub struct PeerlockLite {
    protected: BTreeSet<Asn>,
}

impl PeerlockLite {
    /// Protect an explicit AS set.
    pub fn new(protected: BTreeSet<Asn>) -> PeerlockLite {
        PeerlockLite { protected }
    }

    /// Protect the `k` transit ASes with the largest customer cones —
    /// the synthetic world's stand-in for the tier-1 clique operators
    /// actually peerlock.
    pub fn top_transit(world: &World, k: usize) -> PeerlockLite {
        let mut transits: Vec<(usize, Asn)> = world
            .graph
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.role == AsRole::Transit)
            .map(|(i, n)| (world.graph.customer_cone_size(i), n.asn))
            .collect();
        // Largest cone first; ASN breaks ties deterministically.
        transits.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        PeerlockLite {
            protected: transits.into_iter().take(k).map(|(_, a)| a).collect(),
        }
    }

    /// The protected AS set.
    pub fn protected(&self) -> &BTreeSet<Asn> {
        &self.protected
    }
}

impl PolicyExtension for PeerlockLite {
    fn name(&self) -> &'static str {
        "peerlock-lite"
    }

    fn accept_import(&self, check: &ExtensionCheck<'_>) -> bool {
        // Providers legitimately carry backbone paths downhill.
        if check.rel == Relationship::Provider {
            return true;
        }
        let peer = check.peer_asn();
        // The protected AS may of course announce paths through itself.
        // Deployed peerlock filters are as-path regexes: any occurrence of
        // the protected ASN matters, AS-set members included — which is
        // what lets the filter catch poison-wrapped forgeries too.
        check
            .arena
            .asns_all(check.path, |a| a == peer || !self.protected.contains(&a))
    }
}
