#![forbid(unsafe_code)]
// Scenario library code must degrade gracefully, never panic on data:
// unwrap/expect are denied outside tests (gate enforced by
// scripts/check.sh).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Security scenario suite over the policy simulator.
//!
//! The paper measures which routing policies ASes run *in the wild*; this
//! crate asks the security dual: **what do those policies — and the
//! defenses operators could add — actually block?** It packages three
//! pieces on top of `ir-bgp`'s event-driven engine:
//!
//! * [`scenario`] — hijack attack scenarios: plain origin forgery,
//!   subprefix hijack (classified through the longest-prefix-match
//!   forwarding semantics of [`ir_dataplane::OriginTable`]), and
//!   forged-origin hijacks reusing the engine's poisoning/AS-set
//!   machinery. Outcomes are per-AS: does its forwarding walk end at the
//!   legitimate origin, at the attacker, or nowhere?
//! * [`roa`] + [`defense`] — a synthetic route-origin-authorization
//!   registry derived from the generator's ground truth, and three
//!   [`ir_bgp::PolicyExtension`] implementations evaluated in the
//!   engine's import path: ROV ([`defense::Rov`]), first-AS enforcement
//!   ([`defense::EnforceFirstAs`]), and peerlock-lite
//!   ([`defense::PeerlockLite`]).
//! * [`sweep`] — a deterministic Monte-Carlo adoption sweep: sample
//!   attacker/victim pairs and adopter sets per (adoption fraction,
//!   attack, trial) cell, run each cell's scenario, and report
//!   legitimate/hijacked/disconnected rates as CSV or JSON. The same
//!   seed yields byte-identical output whether cells run sequentially
//!   or under rayon.
//!
//! Everything here is differentially tested against cold engine
//! convergence (see `tests/hijack_differential.rs`): scenarios are sugar
//! over the engine, never a second implementation of it.

pub mod defense;
pub mod roa;
pub mod scenario;
pub mod sweep;

pub use defense::{EnforceFirstAs, PeerlockLite, Rov};
pub use roa::{Roa, RoaRegistry, RouteOriginVerdict};
pub use scenario::{AsOutcome, AttackKind, HijackScenario, ScenarioOutcome, ScenarioRun};
pub use sweep::{
    plan_cells, run_sweep, run_sweep_sequential, sweep_to_csv, sweep_to_json, DefenseKind,
    SweepCell, SweepConfig, SweepRow,
};
