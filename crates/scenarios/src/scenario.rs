//! Hijack attack scenarios and per-AS outcome classification.
//!
//! A [`HijackScenario`] is one attack drawn from the standard ladder —
//! plain origin forgery, subprefix hijack, forged-origin hijack (with
//! optional stealth and AS-set poisoning) — run against a world with an
//! optional [`DefensePlan`] installed. [`HijackScenario::run`] converges
//! the legitimate announcement, launches the attack through the engine's
//! [`PrefixSim::hijack`] event, and classifies every AS by walking its
//! *forwarding* chain for a probe address inside the attacked space:
//! control-plane route tables per prefix, data-plane longest-prefix
//! match across them (via [`OriginTable`], the same index the traceroute
//! pipeline uses). That distinction is what makes subprefix hijacks
//! devastating: an AS can hold a perfectly legitimate route for the
//! covering prefix and still forward the probe into the attacker's
//! more-specific.

use ir_bgp::{ActivationOrder, Announcement, DefensePlan, Delta, PrefixSim, SimContext};
use ir_dataplane::OriginTable;
use ir_topology::graph::NodeIdx;
use ir_types::{Asn, Prefix, Timestamp};
use std::sync::Arc;

/// When the legitimate announcement goes up.
pub const T_ANNOUNCE: Timestamp = Timestamp::ZERO;
/// When the attack launches (after legitimate convergence).
pub const T_ATTACK: Timestamp = Timestamp::from_minutes(1);

/// The attack ladder, least to most sophisticated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttackKind {
    /// The attacker originates the victim's exact prefix itself
    /// (`[attacker]`). ROV classifies it Invalid.
    OriginForgery,
    /// The attacker originates a more-specific of the victim's prefix
    /// (one bit longer). Forwarding prefers it wherever it propagates,
    /// even at ASes still holding the legitimate covering route.
    SubprefixHijack,
    /// The attacker forges the victim as origin (`[attacker, victim]`,
    /// or `[victim]` with `stealth`), optionally wrapping `poison` ASNs
    /// in an AS-set sandwich to keep them from importing it.
    ForgedOrigin {
        /// Omit the attacker from the path — shorter and ROV-clean, but
        /// the first hop no longer matches the session
        /// (enforce-first-AS catches it).
        stealth: bool,
        /// ASNs poisoned into the forged path.
        poison: Vec<Asn>,
    },
}

impl AttackKind {
    /// Stable label used in sweep output.
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::OriginForgery => "origin-forgery",
            AttackKind::SubprefixHijack => "subprefix",
            AttackKind::ForgedOrigin { stealth: false, .. } => "forged-origin",
            AttackKind::ForgedOrigin { stealth: true, .. } => "forged-origin-stealth",
        }
    }
}

/// One attacker/victim/attack instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HijackScenario {
    /// Legitimate origin of [`HijackScenario::prefix`].
    pub victim: Asn,
    /// The victim's announced prefix.
    pub prefix: Prefix,
    /// The hijacking AS.
    pub attacker: Asn,
    /// Which rung of the attack ladder.
    pub kind: AttackKind,
}

/// Per-AS fate under the attack, judged at the forwarding plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AsOutcome {
    /// The forwarding walk reaches the victim's origination.
    Legitimate,
    /// The forwarding walk reaches the attacker's origination.
    Hijacked,
    /// No route, a forwarding loop, or a walk ending anywhere else.
    Disconnected,
}

/// Aggregated per-AS outcomes for one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Outcome per node index (every AS in the world, attacker and
    /// victim included: the attacker counts as hijacked — it originates
    /// the forged route — and a victim forwarding into the attacker's
    /// more-specific counts as hijacked too).
    pub outcomes: Vec<AsOutcome>,
    /// ASes whose walk ends at the victim.
    pub legitimate: usize,
    /// ASes whose walk ends at the attacker.
    pub hijacked: usize,
    /// ASes with no usable forwarding chain.
    pub disconnected: usize,
}

impl ScenarioOutcome {
    fn tally(outcomes: Vec<AsOutcome>) -> ScenarioOutcome {
        let mut legitimate = 0;
        let mut hijacked = 0;
        let mut disconnected = 0;
        for o in &outcomes {
            match o {
                AsOutcome::Legitimate => legitimate += 1,
                AsOutcome::Hijacked => hijacked += 1,
                AsOutcome::Disconnected => disconnected += 1,
            }
        }
        ScenarioOutcome {
            outcomes,
            legitimate,
            hijacked,
            disconnected,
        }
    }

    /// Number of ASes classified.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the world had no ASes at all.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Node indices classified [`AsOutcome::Hijacked`].
    pub fn hijacked_nodes(&self) -> Vec<NodeIdx> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| **o == AsOutcome::Hijacked)
            .map(|(i, _)| i)
            .collect()
    }
}

/// A finished scenario: the converged sims (for differential inspection)
/// plus the classified outcome.
pub struct ScenarioRun<'w> {
    /// Sim for the victim's prefix (legitimate announcement, and the
    /// attack too unless it targets a more-specific).
    pub victim_sim: PrefixSim<'w>,
    /// Sim for the attacker's more-specific ([`AttackKind::SubprefixHijack`]
    /// only).
    pub attack_sim: Option<PrefixSim<'w>>,
    /// Per-AS classification.
    pub outcome: ScenarioOutcome,
}

impl HijackScenario {
    /// The prefix the attacker actually announces: the victim's prefix,
    /// or its first-half more-specific for a subprefix hijack (a /32
    /// cannot be sub-hijacked and degrades to exact-prefix forgery).
    pub fn attack_prefix(&self) -> Prefix {
        match self.kind {
            AttackKind::SubprefixHijack if self.prefix.len < 32 => {
                Prefix::new(self.prefix.base, self.prefix.len + 1)
            }
            _ => self.prefix,
        }
    }

    /// The attack's origination parameters, as fed to
    /// [`PrefixSim::hijack`].
    fn attack_params(&self) -> (Option<Asn>, &[Asn], bool) {
        match &self.kind {
            AttackKind::OriginForgery | AttackKind::SubprefixHijack => (None, &[], false),
            AttackKind::ForgedOrigin { stealth, poison } => {
                (Some(self.victim), poison.as_slice(), *stealth)
            }
        }
    }

    /// The attack as an engine [`Delta`], for the warm what-if path.
    /// Only exact-prefix attacks map onto a delta against the victim's
    /// resident sim; a subprefix hijack targets a different prefix and
    /// has no warm equivalent.
    pub fn as_delta(&self) -> Option<Delta> {
        if self.attack_prefix() != self.prefix {
            return None;
        }
        let (forged_origin, poison, stealth) = self.attack_params();
        Some(Delta::Hijack {
            attacker: self.attacker,
            forged_origin,
            poison: poison.to_vec(),
            stealth,
        })
    }

    /// Runs the scenario cold: converge the legitimate announcement at
    /// [`T_ANNOUNCE`], launch the attack at [`T_ATTACK`], classify every
    /// AS. The optional `defenses` plan is installed on every sim before
    /// any event.
    pub fn run<'w>(
        &self,
        ctx: &Arc<SimContext<'w>>,
        order: ActivationOrder,
        defenses: Option<Arc<DefensePlan>>,
    ) -> ScenarioRun<'w> {
        let mut victim_sim = PrefixSim::with_context_ordered(Arc::clone(ctx), self.prefix, order);
        victim_sim.set_defenses(defenses.clone());
        victim_sim.announce(Announcement::plain(self.victim, self.prefix), T_ANNOUNCE);

        let attack_prefix = self.attack_prefix();
        let (forged_origin, poison, stealth) = self.attack_params();
        let mut attack_sim = if attack_prefix != self.prefix {
            let mut sim = PrefixSim::with_context_ordered(Arc::clone(ctx), attack_prefix, order);
            sim.set_defenses(defenses);
            Some(sim)
        } else {
            None
        };
        match attack_sim.as_mut() {
            Some(sim) => sim.hijack(self.attacker, forged_origin, poison, stealth, T_ATTACK),
            None => victim_sim.hijack(self.attacker, forged_origin, poison, stealth, T_ATTACK),
        };

        let outcome = classify(self, &victim_sim, attack_sim.as_ref());
        ScenarioRun {
            victim_sim,
            attack_sim,
            outcome,
        }
    }
}

/// Classifies every AS by its forwarding walk for a probe address inside
/// the attacked space.
pub fn classify(
    scenario: &HijackScenario,
    victim_sim: &PrefixSim<'_>,
    attack_sim: Option<&PrefixSim<'_>>,
) -> ScenarioOutcome {
    let world = victim_sim.world();
    let graph = &world.graph;
    let n = graph.len();
    let attacker_idx = graph.index_of(scenario.attacker);
    let victim_idx = graph.index_of(scenario.victim);

    // Resolve the probe through the data-plane LPM index: among the
    // prefixes in play, which one governs forwarding for an address in
    // the attacked space? Most-specific first, covering prefix as
    // fallback at ASes the more-specific never reached.
    let attack_prefix = scenario.attack_prefix();
    let probe = attack_prefix.base;
    let mut entries = vec![(scenario.prefix, scenario.victim)];
    if attack_prefix != scenario.prefix {
        entries.push((attack_prefix, scenario.attacker));
    }
    let table = OriginTable::from_entries(entries);
    let sims: Vec<&PrefixSim<'_>> = match (attack_sim, table.lookup_prefix(probe)) {
        (Some(a), Some(p)) if p == a.prefix() => vec![a, victim_sim],
        (Some(a), _) => vec![victim_sim, a],
        (None, _) => vec![victim_sim],
    };

    let outcomes = (0..n)
        .map(|start| {
            let mut cur = start;
            // Each hop either forwards or terminates; a walk longer than
            // n ASes must have cycled (cross-table forwarding loops are
            // real for subprefix hijacks) — that's a blackhole.
            for _ in 0..=n {
                let mut forwarded = None;
                let mut local = false;
                for sim in &sims {
                    if let Some((next, _)) = sim.next_hop(cur) {
                        forwarded = Some(next);
                        break;
                    }
                    if sim.best(cur).is_some() {
                        // A route with no next hop is a local origination.
                        local = true;
                        break;
                    }
                }
                match (forwarded, local) {
                    (Some(next), _) => cur = next,
                    (None, true) => {
                        return if Some(cur) == attacker_idx {
                            AsOutcome::Hijacked
                        } else if Some(cur) == victim_idx {
                            AsOutcome::Legitimate
                        } else {
                            AsOutcome::Disconnected
                        };
                    }
                    (None, false) => return AsOutcome::Disconnected,
                }
            }
            AsOutcome::Disconnected
        })
        .collect();
    ScenarioOutcome::tally(outcomes)
}
