//! Deterministic Monte-Carlo adoption sweep.
//!
//! The question operators actually ask about a defense is not "does it
//! work at 100% deployment" but "what does *partial* adoption buy".
//! A sweep grids over adoption fractions, samples attacker/victim pairs
//! and adopter sets per cell from a seeded generator, runs each cell's
//! [`HijackScenario`], and reports per-cell legitimate/hijacked/
//! disconnected rates.
//!
//! Determinism is load-bearing: cells are planned *sequentially* from
//! the seed ([`plan_cells`]), so the random draws never depend on
//! execution order, and each cell's simulation is self-contained (own
//! forked [`SimContext`], own [`DefensePlan`]). [`run_sweep`] (rayon)
//! and [`run_sweep_sequential`] therefore produce byte-identical CSV —
//! a property the test suite pins.

use crate::defense::{EnforceFirstAs, PeerlockLite, Rov};
use crate::roa::RoaRegistry;
use crate::scenario::{AttackKind, HijackScenario};
use ir_bgp::{ActivationOrder, DefensePlan, PolicyExtension, SimContext};
use ir_topology::graph::NodeIdx;
use ir_topology::World;
use ir_types::{Asn, Prefix};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde_json::Value;
use std::fmt::Write as _;
use std::sync::Arc;

/// How many of the largest transit ASes peerlock-lite protects.
const PEERLOCK_PROTECTED: usize = 16;

/// Which defense the sweep deploys at each adoption fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseKind {
    /// Route-origin validation against the world-derived ROA registry.
    Rov,
    /// First-AS enforcement on every session.
    EnforceFirstAs,
    /// Peerlock-lite protecting the largest transit backbones.
    PeerlockLite,
}

impl DefenseKind {
    /// Stable label used in sweep output.
    pub fn name(&self) -> &'static str {
        match self {
            DefenseKind::Rov => "rov",
            DefenseKind::EnforceFirstAs => "enforce-first-as",
            DefenseKind::PeerlockLite => "peerlock-lite",
        }
    }

    /// Builds the extension once per sweep (the registry / protected-set
    /// derivation is world-sized; cells share it through the `Arc`).
    pub fn build(&self, world: &World) -> Arc<dyn PolicyExtension> {
        match self {
            DefenseKind::Rov => Arc::new(Rov::new(Arc::new(RoaRegistry::from_world(world)))),
            DefenseKind::EnforceFirstAs => Arc::new(EnforceFirstAs),
            DefenseKind::PeerlockLite => {
                Arc::new(PeerlockLite::top_transit(world, PEERLOCK_PROTECTED))
            }
        }
    }
}

/// Sweep grid: `fractions × attacks × trials` cells.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Master seed; every cell derives its own generator from it.
    pub seed: u64,
    /// Adoption fractions to grid over (`0.0..=1.0`).
    pub fractions: Vec<f64>,
    /// Independent attacker/victim draws per (fraction, attack).
    pub trials: usize,
    /// Attacks to run at every fraction.
    pub attacks: Vec<AttackKind>,
    /// Defense deployed on sampled adopters.
    pub defense: DefenseKind,
    /// Engine scheduling discipline for every cell.
    pub order: ActivationOrder,
}

impl SweepConfig {
    /// Total cells the grid produces.
    pub fn cells(&self) -> usize {
        self.fractions.len() * self.attacks.len() * self.trials
    }
}

/// One planned cell: everything random already drawn.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Adoption fraction in force.
    pub adoption: f64,
    /// Trial index within (fraction, attack).
    pub trial: u32,
    /// Attack run in this cell.
    pub attack: AttackKind,
    /// Sampled attacker.
    pub attacker: Asn,
    /// Sampled victim (an AS originating at least one prefix).
    pub victim: Asn,
    /// The victim prefix under attack.
    pub prefix: Prefix,
    /// Sampled adopter set.
    pub adopters: Vec<NodeIdx>,
}

/// One cell's results, ready for CSV/JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// Adoption fraction in force.
    pub adoption: f64,
    /// Trial index within (fraction, attack).
    pub trial: u32,
    /// Attack label ([`AttackKind::name`]).
    pub attack: &'static str,
    /// Sampled attacker.
    pub attacker: Asn,
    /// Sampled victim.
    pub victim: Asn,
    /// Defense label ([`DefenseKind::name`]).
    pub defense: &'static str,
    /// ASes classified.
    pub n: usize,
    /// ASes still reaching the victim.
    pub legitimate: usize,
    /// ASes captured by the attacker.
    pub hijacked: usize,
    /// ASes with no usable forwarding chain.
    pub disconnected: usize,
}

impl SweepRow {
    /// Fraction of ASes still reaching the victim.
    pub fn legit_rate(&self) -> f64 {
        self.rate(self.legitimate)
    }

    /// Fraction of ASes captured by the attacker.
    pub fn hijack_rate(&self) -> f64 {
        self.rate(self.hijacked)
    }

    /// Fraction of ASes blackholed.
    pub fn disconnect_rate(&self) -> f64 {
        self.rate(self.disconnected)
    }

    fn rate(&self, count: usize) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            count as f64 / self.n as f64
        }
    }
}

/// Splitmix-style per-cell seed derivation: decorrelates neighboring
/// cells without depending on planning order.
fn cell_seed(master: u64, index: u64) -> u64 {
    master ^ (index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Plans every cell sequentially from the seed. Pure function of
/// `(world, config)` — the parallel and sequential runners share it,
/// which is what makes their outputs identical.
pub fn plan_cells(world: &World, config: &SweepConfig) -> Vec<SweepCell> {
    let n = world.graph.len();
    let origins: Vec<NodeIdx> = (0..n)
        .filter(|&i| !world.graph.node(i).prefixes.is_empty())
        .collect();
    if n < 2 || origins.is_empty() {
        return Vec::new();
    }
    let mut cells = Vec::with_capacity(config.cells());
    for &adoption in &config.fractions {
        for attack in &config.attacks {
            for trial in 0..config.trials {
                let index = cells.len() as u64;
                let mut rng = StdRng::seed_from_u64(cell_seed(config.seed, index));
                let victim_node = origins[rng.random_range(0..origins.len())];
                let victim = world.graph.asn(victim_node);
                let prefixes = &world.graph.node(victim_node).prefixes;
                let prefix = prefixes[rng.random_range(0..prefixes.len())];
                let attacker_node = loop {
                    let candidate = rng.random_range(0..n);
                    if candidate != victim_node {
                        break candidate;
                    }
                };
                let attacker = world.graph.asn(attacker_node);
                let want = (adoption * n as f64).round() as usize;
                let mut pool: Vec<NodeIdx> = (0..n).collect();
                pool.shuffle(&mut rng);
                pool.truncate(want.min(n));
                cells.push(SweepCell {
                    adoption,
                    trial: trial as u32,
                    attack: attack.clone(),
                    attacker,
                    victim,
                    prefix,
                    adopters: pool,
                });
            }
        }
    }
    cells
}

/// Runs one planned cell: fork a private context, install the adopter
/// plan, run the scenario, tally.
fn run_cell(
    world: &World,
    base: &Arc<SimContext<'_>>,
    ext: &Arc<dyn PolicyExtension>,
    config: &SweepConfig,
    cell: &SweepCell,
) -> SweepRow {
    let ctx = base.fork();
    let mut plan = DefensePlan::for_world(world);
    if let Some(id) = plan.register(Arc::clone(ext)) {
        for &node in &cell.adopters {
            plan.adopt(node, id);
        }
    }
    let scenario = HijackScenario {
        victim: cell.victim,
        prefix: cell.prefix,
        attacker: cell.attacker,
        kind: cell.attack.clone(),
    };
    let run = scenario.run(&ctx, config.order, Some(Arc::new(plan)));
    SweepRow {
        adoption: cell.adoption,
        trial: cell.trial,
        attack: cell.attack.name(),
        attacker: cell.attacker,
        victim: cell.victim,
        defense: config.defense.name(),
        n: run.outcome.len(),
        legitimate: run.outcome.legitimate,
        hijacked: run.outcome.hijacked,
        disconnected: run.outcome.disconnected,
    }
}

/// Runs the sweep with rayon across cells. Row order matches
/// [`plan_cells`] order regardless of scheduling.
pub fn run_sweep(world: &World, config: &SweepConfig) -> Vec<SweepRow> {
    let cells = plan_cells(world, config);
    let base = SimContext::shared(world);
    let ext = config.defense.build(world);
    cells
        .par_iter()
        .map(|cell| run_cell(world, &base, &ext, config, cell))
        .collect()
}

/// Single-threaded reference runner; byte-identical output to
/// [`run_sweep`].
pub fn run_sweep_sequential(world: &World, config: &SweepConfig) -> Vec<SweepRow> {
    let cells = plan_cells(world, config);
    let base = SimContext::shared(world);
    let ext = config.defense.build(world);
    cells
        .iter()
        .map(|cell| run_cell(world, &base, &ext, config, cell))
        .collect()
}

/// Renders rows as CSV (stable header, fixed-precision rates).
pub fn sweep_to_csv(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "adoption,trial,attack,attacker,victim,defense,n,\
         legitimate,hijacked,disconnected,legit_rate,hijack_rate,disconnect_rate\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:.4},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6}",
            r.adoption,
            r.trial,
            r.attack,
            r.attacker.value(),
            r.victim.value(),
            r.defense,
            r.n,
            r.legitimate,
            r.hijacked,
            r.disconnected,
            r.legit_rate(),
            r.hijack_rate(),
            r.disconnect_rate(),
        );
    }
    out
}

/// Renders rows as a JSON array of per-cell objects.
pub fn sweep_to_json(rows: &[SweepRow]) -> String {
    let cells: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("adoption".to_string(), Value::Float(r.adoption)),
                ("trial".to_string(), Value::UInt(u64::from(r.trial))),
                ("attack".to_string(), Value::String(r.attack.to_string())),
                (
                    "attacker".to_string(),
                    Value::UInt(u64::from(r.attacker.value())),
                ),
                (
                    "victim".to_string(),
                    Value::UInt(u64::from(r.victim.value())),
                ),
                ("defense".to_string(), Value::String(r.defense.to_string())),
                ("n".to_string(), Value::UInt(r.n as u64)),
                ("legitimate".to_string(), Value::UInt(r.legitimate as u64)),
                ("hijacked".to_string(), Value::UInt(r.hijacked as u64)),
                (
                    "disconnected".to_string(),
                    Value::UInt(r.disconnected as u64),
                ),
                ("legit_rate".to_string(), Value::Float(r.legit_rate())),
                ("hijack_rate".to_string(), Value::Float(r.hijack_rate())),
                (
                    "disconnect_rate".to_string(),
                    Value::Float(r.disconnect_rate()),
                ),
            ])
        })
        .collect();
    serde_json::to_string(&Value::Array(cells)).unwrap_or_else(|_| "[]".to_string())
}
