//! Synthetic route-origin authorizations (ROAs).
//!
//! Real ROV deployments validate announcements against RPKI ROAs; the
//! synthetic worlds have perfect ground truth instead — every prefix's
//! legitimate origin is recorded on its [`ir_topology::AsNode`]. A
//! [`RoaRegistry`] derived with [`RoaRegistry::from_world`] is therefore
//! the "everyone signed a ROA" ideal: one ROA per ground-truth
//! origination with `max_len` pinned to the announced length, so any
//! origin forgery *and* any more-specific (subprefix) announcement under
//! a covered prefix validates as [`RouteOriginVerdict::Invalid`].
//!
//! Lookup follows RFC 6811 semantics: a route is `Valid` if some
//! covering ROA authorizes its origin at its length, `Invalid` if
//! covering ROAs exist but none match, and `NotFound` when no ROA covers
//! it at all. ROV as deployed treats `NotFound` like `Valid` (dropping
//! unsigned space would break the Internet), and [`crate::Rov`] does the
//! same.

use ir_topology::World;
use ir_types::{Asn, Prefix};

/// One route-origin authorization: `origin` may announce `prefix` and
/// more-specifics down to `max_len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Roa {
    /// Covered prefix.
    pub prefix: Prefix,
    /// Authorized origin AS.
    pub origin: Asn,
    /// Longest announcement length the ROA authorizes.
    pub max_len: u8,
}

/// RFC 6811 route-origin validation result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOriginVerdict {
    /// A covering ROA authorizes this origin at this length.
    Valid,
    /// Covering ROAs exist but none authorizes this (origin, length).
    Invalid,
    /// No ROA covers the prefix.
    NotFound,
}

/// A validated-ROA set with indexed covering-ROA lookup.
///
/// Entries are kept sorted by (base address, length); like the
/// data-plane's LPM table, a query walks backward from the first entry
/// past the queried base, bounded by the shortest ROA length present —
/// so validation is a binary search plus a short scan, cheap enough for
/// the engine's import hot path.
#[derive(Debug, Clone, Default)]
pub struct RoaRegistry {
    roas: Vec<Roa>,
    /// Shortest covered prefix length — bounds the backward walk.
    min_len: u8,
}

impl RoaRegistry {
    /// Builds a registry from explicit ROAs (tests, partial-deployment
    /// studies).
    pub fn new(mut roas: Vec<Roa>) -> RoaRegistry {
        roas.sort_unstable_by_key(|r| (r.prefix.base.0, r.prefix.len, r.origin.0, r.max_len));
        roas.dedup();
        let min_len = roas.iter().map(|r| r.prefix.len).min().unwrap_or(32);
        RoaRegistry { roas, min_len }
    }

    /// The full-deployment registry: one ROA per ground-truth origination
    /// in `world`, `max_len` pinned to the announced length.
    pub fn from_world(world: &World) -> RoaRegistry {
        let roas = world
            .graph
            .nodes()
            .iter()
            .flat_map(|node| {
                node.prefixes.iter().map(|&prefix| Roa {
                    prefix,
                    origin: node.asn,
                    max_len: prefix.len,
                })
            })
            .collect();
        RoaRegistry::new(roas)
    }

    /// Validates an announcement of `prefix` by `origin` (RFC 6811).
    pub fn validate(&self, prefix: Prefix, origin: Asn) -> RouteOriginVerdict {
        if self.roas.is_empty() {
            return RouteOriginVerdict::NotFound;
        }
        // Any covering ROA has its base in [prefix.base & mask(min_len),
        // prefix.base]; entries are sorted by base, so walk backward from
        // the first entry past the base until bases drop below the floor.
        let floor = prefix.base.0 & Prefix::mask(self.min_len);
        let pos = self
            .roas
            .partition_point(|r| r.prefix.base.0 <= prefix.base.0);
        let mut covered = false;
        for r in self.roas[..pos].iter().rev() {
            if r.prefix.base.0 < floor {
                break;
            }
            if !r.prefix.covers(&prefix) {
                continue;
            }
            covered = true;
            if r.origin == origin && prefix.len <= r.max_len {
                return RouteOriginVerdict::Valid;
            }
        }
        if covered {
            RouteOriginVerdict::Invalid
        } else {
            RouteOriginVerdict::NotFound
        }
    }

    /// Number of ROAs.
    pub fn len(&self) -> usize {
        self.roas.len()
    }

    /// Whether the registry holds no ROAs.
    pub fn is_empty(&self) -> bool {
        self.roas.is_empty()
    }

    /// The ROAs, sorted by (base, length, origin).
    pub fn roas(&self) -> &[Roa] {
        &self.roas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn registry() -> RoaRegistry {
        RoaRegistry::new(vec![
            Roa {
                prefix: p("10.1.0.0/16"),
                origin: Asn(100),
                max_len: 16,
            },
            Roa {
                prefix: p("10.2.0.0/16"),
                origin: Asn(200),
                max_len: 24,
            },
        ])
    }

    #[test]
    fn exact_match_is_valid() {
        let r = registry();
        assert_eq!(
            r.validate(p("10.1.0.0/16"), Asn(100)),
            RouteOriginVerdict::Valid
        );
    }

    #[test]
    fn origin_forgery_is_invalid() {
        let r = registry();
        assert_eq!(
            r.validate(p("10.1.0.0/16"), Asn(666)),
            RouteOriginVerdict::Invalid
        );
    }

    #[test]
    fn subprefix_past_max_len_is_invalid_even_for_right_origin() {
        let r = registry();
        assert_eq!(
            r.validate(p("10.1.2.0/24"), Asn(100)),
            RouteOriginVerdict::Invalid
        );
        // ...but allowed where max_len authorizes more-specifics.
        assert_eq!(
            r.validate(p("10.2.2.0/24"), Asn(200)),
            RouteOriginVerdict::Valid
        );
    }

    #[test]
    fn uncovered_space_is_not_found() {
        let r = registry();
        assert_eq!(
            r.validate(p("192.0.2.0/24"), Asn(100)),
            RouteOriginVerdict::NotFound
        );
        assert_eq!(
            RoaRegistry::default().validate(p("10.1.0.0/16"), Asn(100)),
            RouteOriginVerdict::NotFound
        );
    }

    #[test]
    fn covering_walk_finds_shorter_roas() {
        // A /8 ROA covering everything below, plus an unrelated /16 —
        // the backward walk must skip the non-covering /16 and still
        // reach the /8.
        let r = RoaRegistry::new(vec![
            Roa {
                prefix: p("10.0.0.0/8"),
                origin: Asn(7),
                max_len: 8,
            },
            Roa {
                prefix: p("10.3.0.0/16"),
                origin: Asn(300),
                max_len: 16,
            },
        ]);
        assert_eq!(
            r.validate(p("10.9.0.0/16"), Asn(7)),
            RouteOriginVerdict::Invalid
        );
        assert_eq!(
            r.validate(p("10.0.0.0/8"), Asn(7)),
            RouteOriginVerdict::Valid
        );
    }
}
