//! IP→AS mapping and traceroute → AS-path conversion (Chen et al., §3.1).
//!
//! The origin table is what a researcher builds from public BGP feeds: each
//! announced prefix mapped to its origin AS. Hop addresses are resolved by
//! longest-prefix match; unresolvable hops (IXP fabric, unresponsive) are
//! bridged; consecutive duplicates are collapsed; paths with AS-level loops
//! (a conversion artifact) are rejected.

use crate::trace::Traceroute;
use ir_bgp::RoutingUniverse;
use ir_types::{Asn, Ipv4, Prefix};

/// Prefix → origin-AS table, as derived from BGP data.
#[derive(Debug, Clone, Default)]
pub struct OriginTable {
    /// Sorted by (base address, length): the sort order doubles as the
    /// lookup index, so LPM is a binary search plus a short backward walk
    /// instead of a full scan.
    entries: Vec<(Prefix, Asn)>,
    /// Shortest prefix length present — bounds the backward walk.
    min_len: u8,
}

/// The network mask for a prefix length.
fn prefix_mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

impl OriginTable {
    /// Builds the table from a converged routing universe (every announced
    /// prefix with its origin).
    pub fn from_universe(u: &RoutingUniverse) -> OriginTable {
        let entries: Vec<(Prefix, Asn)> = u
            .prefixes()
            .filter_map(|p| u.origin(p).map(|o| (p, o)))
            .collect();
        Self::from_entries(entries)
    }

    /// Builds a table from explicit entries (tests, partial-feed studies).
    pub fn from_entries(mut entries: Vec<(Prefix, Asn)>) -> OriginTable {
        entries.sort_unstable();
        entries.dedup();
        let min_len = entries.iter().map(|(p, _)| p.len).min().unwrap_or(32);
        OriginTable { entries, min_len }
    }

    /// Longest-prefix match.
    pub fn lookup(&self, ip: Ipv4) -> Option<Asn> {
        self.lookup_entry(ip).map(|(_, a)| a)
    }

    /// Longest-prefix match, returning the matching prefix itself.
    pub fn lookup_prefix(&self, ip: Ipv4) -> Option<Prefix> {
        self.lookup_entry(ip).map(|(p, _)| p)
    }

    fn lookup_entry(&self, ip: Ipv4) -> Option<(Prefix, Asn)> {
        // Any prefix containing `ip` has its base in [ip & mask(min_len),
        // ip]; entries are sorted by base, so walk backward from the first
        // entry past `ip` until bases drop below the floor.
        let floor = ip.0 & prefix_mask(self.min_len);
        let pos = self.entries.partition_point(|(p, _)| p.base.0 <= ip.0);
        let mut best: Option<(Prefix, Asn)> = None;
        for &(p, a) in self.entries[..pos].iter().rev() {
            if p.base.0 < floor {
                break;
            }
            if p.contains(ip) && best.is_none_or(|(b, _)| p.len > b.len) {
                best = Some((p, a));
            }
        }
        best
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Converts a traceroute into an AS-level path.
///
/// Returns `None` when the traceroute did not complete or the conversion
/// detects an AS-level loop (an artifact that would poison the analysis;
/// the paper discards such paths). The probe's own AS is always the first
/// element.
pub fn as_path_of(tr: &Traceroute, table: &OriginTable) -> Option<Vec<Asn>> {
    if !tr.reached {
        return None;
    }
    let mut path = vec![tr.src_as];
    for hop in &tr.hops {
        let Some(ip) = hop.ip else { continue }; // unresponsive hop: bridge
        let Some(asn) = table.lookup(ip) else {
            continue;
        }; // IXP/unmapped: bridge
        if path.last() != Some(&asn) {
            path.push(asn);
        }
    }
    // Reject AS-level loops: an AS reappearing non-consecutively.
    let mut seen = std::collections::BTreeSet::new();
    for a in &path {
        if !seen.insert(*a) {
            return None;
        }
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Hop;

    fn table() -> OriginTable {
        OriginTable::from_entries(vec![
            ("10.1.0.0/16".parse().unwrap(), Asn(100)),
            ("10.1.2.0/24".parse().unwrap(), Asn(200)), // more specific
            ("10.2.0.0/16".parse().unwrap(), Asn(300)),
        ])
    }

    fn hop(ip: Option<Ipv4>) -> Hop {
        Hop {
            ip,
            true_asn: None,
            true_city: None,
        }
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let t = table();
        assert_eq!(t.lookup(Ipv4::new(10, 1, 2, 5)), Some(Asn(200)));
        assert_eq!(t.lookup(Ipv4::new(10, 1, 3, 5)), Some(Asn(100)));
        assert_eq!(t.lookup(Ipv4::new(192, 0, 2, 1)), None);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn indexed_lookup_agrees_with_linear_scan() {
        // A denser table with nested and adjacent prefixes.
        let mut entries: Vec<(Prefix, Asn)> = Vec::new();
        for i in 0u32..32 {
            entries.push((
                Prefix {
                    base: Ipv4(10 << 24 | i << 16),
                    len: 16,
                },
                Asn(1000 + i),
            ));
            if i % 3 == 0 {
                entries.push((
                    Prefix {
                        base: Ipv4(10 << 24 | i << 16 | 2 << 8),
                        len: 24,
                    },
                    Asn(2000 + i),
                ));
            }
        }
        entries.push((
            Prefix {
                base: Ipv4(10 << 24),
                len: 8,
            },
            Asn(7),
        ));
        let t = OriginTable::from_entries(entries.clone());
        for x in 0u32..(1 << 14) {
            let ip = Ipv4((10 << 24) | (x * 997));
            let linear = entries
                .iter()
                .filter(|(p, _)| p.contains(ip))
                .max_by_key(|(p, _)| p.len)
                .map(|&(_, a)| a);
            assert_eq!(t.lookup(ip), linear, "mismatch at {ip:?}");
        }
        assert_eq!(t.lookup(Ipv4::new(11, 0, 0, 1)), None);
    }

    fn mk_trace(hops: Vec<Hop>, reached: bool) -> Traceroute {
        Traceroute {
            src_as: Asn(1),
            dst_ip: Ipv4::new(10, 2, 0, 9),
            dst_hostname: None,
            hops,
            reached,
        }
    }

    #[test]
    fn conversion_collapses_and_bridges() {
        let t = table();
        let tr = mk_trace(
            vec![
                hop(Some(Ipv4::new(10, 1, 0, 1))),   // AS100
                hop(Some(Ipv4::new(10, 1, 0, 2))),   // AS100 again → collapse
                hop(None),                           // star → bridge
                hop(Some(Ipv4::new(198, 32, 0, 5))), // unmapped IXP → bridge
                hop(Some(Ipv4::new(10, 2, 0, 9))),   // AS300
            ],
            true,
        );
        assert_eq!(as_path_of(&tr, &t), Some(vec![Asn(1), Asn(100), Asn(300)]));
    }

    #[test]
    fn loops_are_rejected() {
        let t = table();
        let tr = mk_trace(
            vec![
                hop(Some(Ipv4::new(10, 1, 0, 1))), // AS100
                hop(Some(Ipv4::new(10, 2, 0, 1))), // AS300
                hop(Some(Ipv4::new(10, 1, 0, 3))), // AS100 again → loop
            ],
            true,
        );
        assert_eq!(as_path_of(&tr, &t), None);
    }

    #[test]
    fn unreached_is_discarded() {
        let t = table();
        let tr = mk_trace(vec![hop(Some(Ipv4::new(10, 1, 0, 1)))], false);
        assert_eq!(as_path_of(&tr, &t), None);
    }

    #[test]
    fn probe_as_always_first_even_if_unmapped_first_hop() {
        let t = table();
        let tr = mk_trace(vec![hop(None), hop(Some(Ipv4::new(10, 2, 0, 9)))], true);
        assert_eq!(as_path_of(&tr, &t), Some(vec![Asn(1), Asn(300)]));
    }
}
