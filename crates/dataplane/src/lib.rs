#![forbid(unsafe_code)]
// Library code must degrade gracefully, never panic on data: unwrap/expect
// are denied outside tests (gate enforced by scripts/check.sh).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Data-plane substrate: addresses, forwarding, traceroute, IP→AS mapping,
//! geolocation.
//!
//! The paper's passive methodology (§3.1) is data-plane first: RIPE Atlas
//! probes traceroute toward content hostnames, and the IP-level paths are
//! converted to AS-level paths with the method of Chen et al. That
//! conversion is lossy in specific, well-known ways — border interfaces
//! numbered from the neighbor's space ("third-party addresses"), IXP
//! addresses that no AS originates, unresponsive hops — and the analysis
//! inherits those errors. This crate reproduces the whole chain:
//!
//! * [`addr`] — a deterministic address plan: router interface addresses
//!   carved from each AS's prefixes, plus an unannounced IXP block;
//! * [`trace`] — a traceroute engine that walks converged BGP forwarding
//!   (from [`ir_bgp::RoutingUniverse`]) hop by hop, emitting interface IPs
//!   with seeded measurement artifacts;
//! * [`ip2as`] — the origin-prefix table (as one would build from public
//!   BGP feeds) and the traceroute → AS-path conversion;
//! * [`geo`] — an Alidade-like IP geolocation database with configurable
//!   coverage and accuracy, used by the hybrid-relationship and
//!   continental analyses (§4.1, §6).

pub mod addr;
pub mod geo;
pub mod ip2as;
pub mod trace;

pub use addr::AddressPlan;
pub use geo::GeoDb;
pub use ip2as::{as_path_of, OriginTable};
pub use trace::{Hop, TraceConfig, Tracer, Traceroute};
