//! The deterministic address plan.
//!
//! Every AS numbers its router interfaces out of the **low** addresses of
//! its first prefix, one per point-of-presence city; content servers sit at
//! the **high** end of their deployment prefixes (see
//! [`ir_topology::content::Deployment::server_ip`]), so the two never
//! collide. A reserved, *unannounced* IXP block provides the shared
//! interconnection addresses that defeat IP→AS mapping at exchange points.

use ir_topology::World;
use ir_types::{Asn, CityId, Ipv4, Prefix};
use std::collections::BTreeMap;

/// The unannounced IXP address block (plays the role of 198.32.0.0/16-style
/// exchange fabrics).
pub const IXP_BLOCK: Prefix = Prefix {
    base: Ipv4(0xC620_0000),
    len: 16,
}; // 198.32.0.0/16

/// Address plan for a world.
pub struct AddressPlan {
    /// Router interface address per (AS, city-of-presence).
    router_ifaces: BTreeMap<(Asn, CityId), Ipv4>,
    /// Reverse map for ground-truth lookups in tests and oracles.
    reverse: BTreeMap<Ipv4, (Asn, CityId)>,
}

impl AddressPlan {
    /// Builds the plan: for every AS, interface `i` (the i-th presence
    /// city, in presence order) gets `first_prefix.addr(1 + i)`.
    pub fn build(world: &World) -> AddressPlan {
        let mut router_ifaces = BTreeMap::new();
        let mut reverse = BTreeMap::new();
        for node in world.graph.nodes() {
            let pfx = node.prefixes[0];
            for (i, &city) in node.presence.iter().enumerate() {
                // Interfaces occupy .1 .. .62 of the first /24; presence
                // lists are far smaller than that in any config.
                let ip = pfx.addr(1 + (i as u64 % 62));
                router_ifaces.insert((node.asn, city), ip);
                reverse.entry(ip).or_insert((node.asn, city));
            }
        }
        AddressPlan {
            router_ifaces,
            reverse,
        }
    }

    /// The router interface of `asn` at `city`, if the AS has a PoP there.
    pub fn router(&self, asn: Asn, city: CityId) -> Option<Ipv4> {
        self.router_ifaces.get(&(asn, city)).copied()
    }

    /// Any router interface of `asn` (its first PoP in presence order).
    pub fn any_router(&self, asn: Asn) -> Option<Ipv4> {
        self.router_ifaces
            .iter()
            .find(|((a, _), _)| *a == asn)
            .map(|(_, ip)| *ip)
    }

    /// The shared IXP fabric address used at `city`.
    pub fn ixp_address(city: CityId) -> Ipv4 {
        IXP_BLOCK.addr(1 + city.0 as u64)
    }

    /// Ground truth: which AS/city owns this router interface (not
    /// available to the measurement pipeline — used by tests and oracles).
    pub fn truth(&self, ip: Ipv4) -> Option<(Asn, CityId)> {
        self.reverse.get(&ip).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_topology::GeneratorConfig;

    #[test]
    fn ixp_block_value() {
        assert_eq!(IXP_BLOCK.to_string(), "198.32.0.0/16");
        assert!(IXP_BLOCK.contains(AddressPlan::ixp_address(CityId(7))));
    }

    #[test]
    fn interfaces_live_inside_own_prefix() {
        let w = GeneratorConfig::tiny().build(2);
        let plan = AddressPlan::build(&w);
        for node in w.graph.nodes() {
            for &city in &node.presence {
                let ip = plan.router(node.asn, city).expect("PoP has an interface");
                assert!(
                    node.prefixes[0].contains(ip),
                    "{} interface outside prefix",
                    node.asn
                );
                // Interfaces never collide with deployment server addresses
                // (servers are at the top of their prefix).
                assert_ne!(ip, node.prefixes[0].addr(node.prefixes[0].size() - 1));
            }
        }
    }

    #[test]
    fn truth_roundtrip() {
        let w = GeneratorConfig::tiny().build(2);
        let plan = AddressPlan::build(&w);
        let node = &w.graph.nodes()[0];
        let city = node.presence[0];
        let ip = plan.router(node.asn, city).unwrap();
        assert_eq!(plan.truth(ip), Some((node.asn, city)));
        assert_eq!(plan.any_router(node.asn), Some(ip));
    }

    #[test]
    fn unknown_lookups_are_none() {
        let w = GeneratorConfig::tiny().build(2);
        let plan = AddressPlan::build(&w);
        assert_eq!(plan.router(Asn(424242), CityId(0)), None);
        assert_eq!(plan.truth(Ipv4::new(203, 0, 113, 77)), None);
        assert_eq!(plan.any_router(Asn(424242)), None);
    }
}
