//! The traceroute engine.
//!
//! A traceroute walks the converged BGP forwarding state hop by hop —
//! interdomain forwarding is destination-based (§3.1), so each AS on the
//! way forwards along its own selected route, which is exactly why one
//! traceroute exposes a routing decision *for every AS it crosses*.
//!
//! Hop addresses carry the classic measurement artifacts, seeded and
//! rate-configurable:
//!
//! * **third-party addresses** — the ingress interface of the next AS
//!   numbered out of the previous AS's space, so IP→AS maps the hop to the
//!   wrong AS;
//! * **IXP fabric addresses** — from the unannounced exchange block, so
//!   IP→AS cannot map the hop at all;
//! * **unresponsive hops** — `*`.

use crate::addr::AddressPlan;
use ir_bgp::RoutingUniverse;
use ir_topology::graph::NodeIdx;
use ir_topology::World;
use ir_types::{Asn, CityId, Ipv4, Timestamp};
use rand::prelude::*;
use rand::rngs::StdRng;

/// One traceroute hop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hop {
    /// Responding interface address; `None` for an unresponsive hop (`*`).
    pub ip: Option<Ipv4>,
    /// Ground truth: the AS whose router answered (regardless of whose
    /// address space the interface is numbered from). Not available to the
    /// measurement pipeline; used by tests and oracles.
    pub true_asn: Option<Asn>,
    /// Ground truth: where the router is.
    pub true_city: Option<CityId>,
}

/// A completed traceroute measurement.
#[derive(Debug, Clone)]
pub struct Traceroute {
    /// AS hosting the probe.
    pub src_as: Asn,
    /// Destination address.
    pub dst_ip: Ipv4,
    /// Hostname the destination was resolved from, when DNS was involved.
    pub dst_hostname: Option<String>,
    /// Hop list, probe-side first.
    pub hops: Vec<Hop>,
    /// Whether the destination answered.
    pub reached: bool,
}

impl Traceroute {
    /// Ground-truth AS-level path (probe AS first, destination AS last),
    /// deduplicated per hop run. The measurement pipeline never sees this.
    pub fn true_as_path(&self) -> Vec<Asn> {
        let mut path = vec![self.src_as];
        for h in &self.hops {
            if let Some(a) = h.true_asn {
                if path.last() != Some(&a) {
                    path.push(a);
                }
            }
        }
        path
    }
}

/// Artifact rates for hop-address emission.
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Ingress interface numbered from the previous AS's space.
    pub third_party_rate: f64,
    /// Interconnection through an IXP fabric address.
    pub ixp_rate: f64,
    /// Unresponsive hop.
    pub star_rate: f64,
    /// Extra intra-AS hop emitted inside transit ASes.
    pub extra_hop_rate: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            third_party_rate: 0.05,
            ixp_rate: 0.04,
            star_rate: 0.03,
            extra_hop_rate: 0.25,
        }
    }
}

/// Traceroute engine bound to a world and its converged routing state.
///
/// ```
/// use ir_bgp::RoutingUniverse;
/// use ir_dataplane::{AddressPlan, TraceConfig, Tracer};
/// use ir_topology::GeneratorConfig;
///
/// let world = GeneratorConfig::tiny().build(2);
/// // Converge just the prefixes we need (the destination's /24).
/// let dep = &world.content.providers()[0].deployments[0];
/// let covering = world.graph.nodes().iter()
///     .flat_map(|n| n.prefixes.iter().copied())
///     .find(|p| p.covers(&dep.prefix)).unwrap();
/// let universe = RoutingUniverse::compute(&world, &[covering]);
/// let plan = AddressPlan::build(&world);
/// let tracer = Tracer::new(&world, &universe, &plan, TraceConfig::default(), 0);
///
/// let probe = world.graph.nodes().iter().find(|n| n.asn.value() >= 20_000).unwrap().asn;
/// let tr = tracer.run(probe, dep.server_ip());
/// assert!(tr.reached);
/// assert_eq!(tr.true_as_path().first(), Some(&probe));
/// ```
pub struct Tracer<'a> {
    world: &'a World,
    universe: &'a RoutingUniverse,
    plan: &'a AddressPlan,
    cfg: TraceConfig,
    seed: u64,
}

impl<'a> Tracer<'a> {
    /// Binds the engine. `seed` namespaces all artifact randomness; a given
    /// `(seed, src, dst)` triple always produces the same traceroute.
    pub fn new(
        world: &'a World,
        universe: &'a RoutingUniverse,
        plan: &'a AddressPlan,
        cfg: TraceConfig,
        seed: u64,
    ) -> Tracer<'a> {
        Tracer {
            world,
            universe,
            plan,
            cfg,
            seed,
        }
    }

    fn rng_for(&self, src: Asn, dst: Ipv4) -> StdRng {
        // SplitMix-style stream derivation keeps traceroutes independent.
        let mut z = self
            .seed
            .wrapping_add((src.value() as u64) << 32)
            .wrapping_add(dst.0 as u64)
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        StdRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Runs a traceroute from a probe in `src` toward `dst_ip`.
    pub fn run(&self, src: Asn, dst_ip: Ipv4) -> Traceroute {
        let mut rng = self.rng_for(src, dst_ip);
        let mut tr = Traceroute {
            src_as: src,
            dst_ip,
            dst_hostname: None,
            hops: Vec::new(),
            reached: false,
        };
        let Some(src_idx) = self.world.graph.index_of(src) else {
            return tr;
        };
        let Some(dst_pfx) = self.universe.lpm(dst_ip) else {
            return tr; // destination not routed at all
        };

        // First hop: the probe's gateway inside the source AS.
        let src_city = self.world.graph.node(src_idx).presence[0];
        self.emit(&mut tr, src_idx, src_idx, src_city, &mut rng);

        let mut cur: NodeIdx = src_idx;
        let mut hops = 0usize;
        loop {
            let Some(route) = self.universe.route(dst_pfx, cur) else {
                return tr; // no route: traceroute dies with stars
            };
            if route.is_local() {
                // Inside the destination AS: the destination answers.
                tr.hops.push(Hop {
                    ip: Some(dst_ip),
                    true_asn: Some(self.world.graph.asn(cur)),
                    true_city: Some(self.world.graph.node(cur).presence[0]),
                });
                tr.reached = true;
                return tr;
            }
            // A well-formed non-local route carries both; a malformed one
            // (corrupt input table) kills the traceroute with stars rather
            // than the whole campaign.
            let (Some(next_asn), Some(city)) = (route.learned_from, route.entry_city) else {
                return tr;
            };
            let Some(next) = self.world.graph.index_of(next_asn) else {
                return tr;
            };
            // Ingress hop of the next AS at the interconnection city.
            self.emit(&mut tr, next, cur, city, &mut rng);
            // Possibly one more hop deeper inside the next AS.
            if rng.random_bool(self.cfg.extra_hop_rate) {
                let inner_city = self.world.graph.node(next).presence[0];
                if inner_city != city {
                    self.emit_plain(&mut tr, next, inner_city);
                }
            }
            cur = next;
            hops += 1;
            if hops > self.world.graph.len() {
                return tr; // forwarding loop guard (cannot happen post-convergence)
            }
        }
    }

    /// Emits the ingress hop of `node` at `city`, where the packet came
    /// from `prev` — applying the artifact model.
    fn emit(
        &self,
        tr: &mut Traceroute,
        node: NodeIdx,
        prev: NodeIdx,
        city: CityId,
        rng: &mut StdRng,
    ) {
        let asn = self.world.graph.asn(node);
        let roll: f64 = rng.random();
        let c = &self.cfg;
        let ip = if roll < c.star_rate {
            None
        } else if roll < c.star_rate + c.ixp_rate && node != prev {
            Some(AddressPlan::ixp_address(city))
        } else if roll < c.star_rate + c.ixp_rate + c.third_party_rate && node != prev {
            // Third-party: numbered from the previous AS's space.
            self.plan
                .router(self.world.graph.asn(prev), city)
                .or_else(|| self.plan.any_router(self.world.graph.asn(prev)))
        } else {
            self.plan
                .router(asn, city)
                .or_else(|| self.plan.any_router(asn))
        };
        tr.hops.push(Hop {
            ip,
            true_asn: Some(asn),
            true_city: Some(city),
        });
    }

    /// Emits an artifact-free intra-AS hop.
    fn emit_plain(&self, tr: &mut Traceroute, node: NodeIdx, city: CityId) {
        let asn = self.world.graph.asn(node);
        let ip = self
            .plan
            .router(asn, city)
            .or_else(|| self.plan.any_router(asn));
        tr.hops.push(Hop {
            ip,
            true_asn: Some(asn),
            true_city: Some(city),
        });
    }

    /// Convenience: the time a traceroute nominally takes; used by the
    /// measurement scheduler to advance the logical clock.
    pub fn nominal_duration() -> Timestamp {
        Timestamp(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip2as::{as_path_of, OriginTable};
    use ir_topology::GeneratorConfig;

    struct Fixture {
        world: World,
        universe: RoutingUniverse,
        plan: AddressPlan,
    }

    fn fixture() -> &'static Fixture {
        use std::sync::OnceLock;
        static FIXTURE: OnceLock<Fixture> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let world = GeneratorConfig::tiny().build(6);
            let universe = RoutingUniverse::compute_all(&world);
            let plan = AddressPlan::build(&world);
            Fixture {
                world,
                universe,
                plan,
            }
        })
    }

    fn no_artifacts() -> TraceConfig {
        TraceConfig {
            third_party_rate: 0.0,
            ixp_rate: 0.0,
            star_rate: 0.0,
            extra_hop_rate: 0.0,
        }
    }

    fn pick_src_dst(f: &Fixture) -> (Asn, Ipv4) {
        // A stub probe and a content deployment server whose prefix the
        // probe's AS actually has a route toward — random worlds may leave
        // some (stub, deployment) pairs unreachable under policy.
        for src in f
            .world
            .graph
            .nodes()
            .iter()
            .filter(|n| n.asn.value() >= 20_000)
        {
            let src_idx = f.world.graph.index_of(src.asn).unwrap();
            for p in f.world.content.providers() {
                for d in &p.deployments {
                    let ip = d.server_ip();
                    let reachable = f
                        .universe
                        .lpm(ip)
                        .is_some_and(|pfx| f.universe.route(pfx, src_idx).is_some());
                    if reachable {
                        return (src.asn, ip);
                    }
                }
            }
        }
        panic!("no reachable (probe, deployment) pair in fixture world");
    }

    #[test]
    fn clean_traceroute_matches_control_plane_path() {
        let f = fixture();
        let (src, dst) = pick_src_dst(f);
        let tracer = Tracer::new(&f.world, &f.universe, &f.plan, no_artifacts(), 1);
        let tr = tracer.run(src, dst);
        assert!(tr.reached, "destination answered");
        // With no artifacts, the converted AS path equals the ground truth.
        let table = OriginTable::from_universe(&f.universe);
        let converted = as_path_of(&tr, &table).expect("clean conversion");
        assert_eq!(converted, tr.true_as_path());
        // And the ground-truth path matches the control plane: src's best
        // route toward the destination prefix.
        let pfx = f.universe.lpm(dst).unwrap();
        let src_idx = f.world.graph.index_of(src).unwrap();
        let route = f.universe.route(pfx, src_idx).unwrap();
        let mut control = vec![src];
        control.extend(route.path.sequence_asns());
        assert_eq!(converted, control);
    }

    #[test]
    fn traceroutes_are_deterministic() {
        let f = fixture();
        let (src, dst) = pick_src_dst(f);
        let tracer = Tracer::new(&f.world, &f.universe, &f.plan, TraceConfig::default(), 9);
        let a = tracer.run(src, dst);
        let b = tracer.run(src, dst);
        assert_eq!(a.hops, b.hops);
        assert_eq!(a.reached, b.reached);
    }

    #[test]
    fn artifacts_appear_at_high_rates() {
        let f = fixture();
        let cfg = TraceConfig {
            third_party_rate: 0.5,
            ixp_rate: 0.4,
            star_rate: 0.1,
            extra_hop_rate: 0.0,
        };
        let tracer = Tracer::new(&f.world, &f.universe, &f.plan, cfg, 2);
        let mut stars = 0;
        let mut ixp = 0;
        let mut third = 0;
        for node in f
            .world
            .graph
            .nodes()
            .iter()
            .filter(|n| n.asn.value() >= 20_000)
            .take(30)
        {
            let d = &f.world.content.providers()[0].deployments[0];
            let tr = tracer.run(node.asn, d.server_ip());
            for h in &tr.hops {
                match h.ip {
                    None => stars += 1,
                    Some(ip) if crate::addr::IXP_BLOCK.contains(ip) => ixp += 1,
                    Some(ip) => {
                        if let (Some((owner, _)), Some(truth)) = (f.plan.truth(ip), h.true_asn) {
                            if owner != truth {
                                third += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(stars > 0, "stars emitted");
        assert!(ixp > 0, "IXP hops emitted");
        assert!(third > 0, "third-party addresses emitted");
    }

    #[test]
    fn unroutable_destination_unreached() {
        let f = fixture();
        let (src, _) = pick_src_dst(f);
        let tracer = Tracer::new(&f.world, &f.universe, &f.plan, no_artifacts(), 3);
        let tr = tracer.run(src, Ipv4::new(203, 0, 113, 7));
        assert!(!tr.reached);
    }

    #[test]
    fn every_transit_as_appears_in_true_path() {
        // A traceroute exposes a decision for each AS along the path;
        // the true path must contain no gaps relative to forwarding.
        let f = fixture();
        let (src, dst) = pick_src_dst(f);
        let tracer = Tracer::new(&f.world, &f.universe, &f.plan, no_artifacts(), 4);
        let tr = tracer.run(src, dst);
        let path = tr.true_as_path();
        // Each consecutive pair is a ground-truth link.
        for w in path.windows(2) {
            let a = f.world.graph.index_of(w[0]).unwrap();
            let b = f.world.graph.index_of(w[1]).unwrap();
            assert!(
                f.world.graph.link(a, b).is_some(),
                "{} - {} adjacent",
                w[0],
                w[1]
            );
        }
    }
}
