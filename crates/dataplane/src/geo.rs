//! Alidade-like IP geolocation.
//!
//! The paper uses the Alidade database (Chandrasekaran et al.) because it
//! has "good coverage of infrastructure IPs such as routers". We build the
//! equivalent: a database mapping router-interface and server addresses to
//! cities, derived from ground truth with a seeded error model — a small
//! fraction of addresses is missing, and a small fraction is mislocated to
//! another city in the same country (the dominant real-world failure mode
//! for infrastructure geolocation).

use crate::addr::AddressPlan;
use ir_topology::World;
use ir_types::{CityId, Continent, CountryId, Ipv4};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// Error-model parameters for the database build.
#[derive(Debug, Clone, Copy)]
pub struct GeoConfig {
    /// Probability that an address is simply absent from the database.
    pub miss_rate: f64,
    /// Probability that a present address is mapped to a wrong city within
    /// the right country.
    pub wrong_city_rate: f64,
}

impl Default for GeoConfig {
    fn default() -> Self {
        GeoConfig {
            miss_rate: 0.02,
            wrong_city_rate: 0.03,
        }
    }
}

/// The geolocation database.
pub struct GeoDb {
    entries: BTreeMap<Ipv4, CityId>,
    /// Country/continent lookups resolved at query time via the world's
    /// geography, captured here to keep the query API self-contained.
    city_country: Vec<CountryId>,
    country_continent: Vec<Continent>,
}

impl GeoDb {
    /// An empty database (every lookup misses). Useful for pure-path unit
    /// tests in downstream crates.
    pub fn empty() -> GeoDb {
        GeoDb {
            entries: BTreeMap::new(),
            city_country: Vec::new(),
            country_continent: Vec::new(),
        }
    }

    /// Builds the database from the world's address plan and server
    /// deployments, with the given error model.
    pub fn build(world: &World, plan: &AddressPlan, cfg: GeoConfig, seed: u64) -> GeoDb {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut entries = BTreeMap::new();
        // Router interfaces.
        for node in world.graph.nodes() {
            for &city in &node.presence {
                if let Some(ip) = plan.router(node.asn, city) {
                    if let Some(loc) = Self::perturb(world, city, cfg, &mut rng) {
                        entries.insert(ip, loc);
                    }
                }
            }
        }
        // Content servers: located at the hosting AS's first presence city.
        for p in world.content.providers() {
            for d in &p.deployments {
                if let Some(idx) = world.graph.index_of(d.host_as) {
                    let city = world.graph.node(idx).presence[0];
                    if let Some(loc) = Self::perturb(world, city, cfg, &mut rng) {
                        entries.insert(d.server_ip(), loc);
                    }
                }
            }
        }
        GeoDb {
            entries,
            city_country: world.geo.cities().iter().map(|c| c.country).collect(),
            country_continent: world.geo.countries().iter().map(|c| c.continent).collect(),
        }
    }

    fn perturb(world: &World, city: CityId, cfg: GeoConfig, rng: &mut StdRng) -> Option<CityId> {
        if rng.random_bool(cfg.miss_rate) {
            return None;
        }
        if rng.random_bool(cfg.wrong_city_rate) {
            let country = world.geo.country_of(city);
            let siblings = &world.geo.country(country).cities;
            if siblings.len() > 1 {
                let other: Vec<CityId> = siblings.iter().copied().filter(|c| *c != city).collect();
                return Some(other[rng.random_range(0..other.len())]);
            }
        }
        Some(city)
    }

    /// City an address geolocates to, if known.
    pub fn city(&self, ip: Ipv4) -> Option<CityId> {
        self.entries.get(&ip).copied()
    }

    /// Country an address geolocates to.
    pub fn country(&self, ip: Ipv4) -> Option<CountryId> {
        self.city(ip).map(|c| self.city_country[c.0 as usize])
    }

    /// Continent an address geolocates to.
    pub fn continent(&self, ip: Ipv4) -> Option<Continent> {
        self.country(ip)
            .map(|c| self.country_continent[c.0 as usize])
    }

    /// Number of addresses in the database.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_topology::GeneratorConfig;

    fn setup() -> (World, AddressPlan) {
        let w = GeneratorConfig::tiny().build(4);
        let plan = AddressPlan::build(&w);
        (w, plan)
    }

    #[test]
    fn perfect_db_matches_ground_truth() {
        let (w, plan) = setup();
        let cfg = GeoConfig {
            miss_rate: 0.0,
            wrong_city_rate: 0.0,
        };
        let db = GeoDb::build(&w, &plan, cfg, 1);
        for node in w.graph.nodes() {
            for &city in &node.presence {
                let ip = plan.router(node.asn, city).unwrap();
                // Multiple presence cities can share one interface address
                // (modulo wrap); ground truth only guaranteed for the entry
                // the reverse map kept.
                if plan.truth(ip) == Some((node.asn, city)) {
                    assert_eq!(db.city(ip), Some(city));
                    assert_eq!(db.country(ip), Some(w.geo.country_of(city)));
                    assert_eq!(db.continent(ip), Some(w.geo.continent_of(city)));
                }
            }
        }
    }

    #[test]
    fn error_model_misses_and_mislocates() {
        let (w, plan) = setup();
        let lossy = GeoDb::build(
            &w,
            &plan,
            GeoConfig {
                miss_rate: 0.5,
                wrong_city_rate: 0.0,
            },
            2,
        );
        let perfect = GeoDb::build(
            &w,
            &plan,
            GeoConfig {
                miss_rate: 0.0,
                wrong_city_rate: 0.0,
            },
            2,
        );
        assert!(lossy.len() < perfect.len(), "misses reduce coverage");

        let wrong = GeoDb::build(
            &w,
            &plan,
            GeoConfig {
                miss_rate: 0.0,
                wrong_city_rate: 1.0,
            },
            3,
        );
        // Wrong-city entries stay in the right country.
        let mut mismatches = 0;
        for node in w.graph.nodes() {
            for &city in &node.presence {
                let ip = plan.router(node.asn, city).unwrap();
                if plan.truth(ip) != Some((node.asn, city)) {
                    continue;
                }
                let got = wrong.city(ip).unwrap();
                assert_eq!(
                    w.geo.country_of(got),
                    w.geo.country_of(city),
                    "mislocation stays in-country"
                );
                if got != city {
                    mismatches += 1;
                }
            }
        }
        assert!(
            mismatches > 0,
            "wrong_city_rate=1.0 mislocates multi-city countries"
        );
    }

    #[test]
    fn servers_are_geolocated() {
        let (w, plan) = setup();
        let db = GeoDb::build(
            &w,
            &plan,
            GeoConfig {
                miss_rate: 0.0,
                wrong_city_rate: 0.0,
            },
            4,
        );
        let d = &w.content.providers()[0].deployments[0];
        assert!(db.city(d.server_ip()).is_some());
    }

    #[test]
    fn unknown_ip_is_none() {
        let (w, plan) = setup();
        let db = GeoDb::build(&w, &plan, GeoConfig::default(), 5);
        assert_eq!(db.city(Ipv4::new(203, 0, 113, 1)), None);
        assert!(!db.is_empty());
    }
}
