//! Differential suite for the campaign scheduler under fault injection.
//!
//! Two properties anchor the fault plane's contract on the measurement
//! side:
//!
//! * **zero rates are a strict no-op** — a quiet plane produces the same
//!   traceroutes, report, and budget accounting as the plain `run`, for
//!   any plane seed;
//! * **determinism** — the same plane (seed + rates) replayed over the
//!   same fixture yields an identical `CampaignReport` and traceroute set,
//!   and every planned measurement is accounted for.

use ir_bgp::RoutingUniverse;
use ir_dataplane::AddressPlan;
use ir_fault::{FaultConfig, FaultPlane};
use ir_measure::atlas::ProbePool;
use ir_measure::campaign::{Campaign, CampaignConfig};
use ir_topology::{GeneratorConfig, World};
use proptest::prelude::*;
use std::sync::OnceLock;

struct Fx {
    world: World,
    universe: RoutingUniverse,
    plan: AddressPlan,
    pool: ProbePool,
}

fn fx() -> &'static Fx {
    static F: OnceLock<Fx> = OnceLock::new();
    F.get_or_init(|| {
        let world = GeneratorConfig::tiny().build(23);
        let universe = RoutingUniverse::compute_all(&world);
        let plan = AddressPlan::build(&world);
        let pool = ProbePool::install(&world, 23);
        Fx {
            world,
            universe,
            plan,
            pool,
        }
    })
}

fn run_under(plane: &FaultPlane, budget: Option<usize>) -> Campaign {
    let f = fx();
    let probes = f.pool.select_balanced(24);
    let cfg = CampaignConfig {
        budget,
        ..CampaignConfig::default()
    };
    Campaign::run_with_faults(&f.world, &f.universe, &f.plan, &probes, &cfg, plane)
}

fn same_traceroutes(a: &Campaign, b: &Campaign) -> bool {
    a.traceroutes.len() == b.traceroutes.len()
        && a.traceroutes
            .iter()
            .zip(&b.traceroutes)
            .all(|(x, y)| x.hops == y.hops && x.dst_hostname == y.dst_hostname)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn zero_rate_plane_is_a_strict_noop(seed in 0u64..10_000) {
        let quiet = FaultPlane::new(FaultConfig::quiet(), seed);
        let faulted_path = run_under(&quiet, None);
        let plain = run_under(&FaultPlane::quiet(), None);
        prop_assert!(same_traceroutes(&plain, &faulted_path));
        prop_assert_eq!(plain.report, faulted_path.report);
        prop_assert_eq!(quiet.stats().total(), 0);
    }

    #[test]
    fn same_seed_same_report(seed in 0u64..10_000, pct in 1u32..40) {
        let rates = FaultConfig {
            probe_dropout: f64::from(pct) / 100.0,
            dns_failure: f64::from(pct) / 200.0,
            probe_death: f64::from(pct) / 1000.0,
            ..FaultConfig::quiet()
        };
        let a = run_under(&FaultPlane::new(rates, seed), None);
        let b = run_under(&FaultPlane::new(rates, seed), None);
        prop_assert_eq!(a.report, b.report);
        prop_assert!(same_traceroutes(&a, &b));
        prop_assert!(a.accounted(), "{}", a.report);
    }

    #[test]
    fn budget_accounting_survives_faults(seed in 0u64..10_000) {
        let rates = FaultConfig {
            probe_dropout: 0.2,
            dns_failure: 0.05,
            ..FaultConfig::quiet()
        };
        let c = run_under(&FaultPlane::new(rates, seed), Some(40));
        prop_assert!(c.traceroutes.len() <= 40);
        prop_assert!(c.accounted(), "{}", c.report);
    }
}
