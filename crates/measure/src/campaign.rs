//! The passive measurement campaign (§3.1).
//!
//! Every selected probe resolves each of the content hostnames through the
//! CDN-aware [`crate::dns::Resolver`] and traceroutes the result.
//! The output is the raw traceroute dataset the paper's Figure 1–3 and
//! Tables 3–4 analyses consume.
//!
//! The campaign runs as a retrying scheduler over a simulated clock: each
//! (probe, hostname) measurement is submitted once, and transient faults
//! (DNS resolution failures, probe dropouts) re-queue it with capped
//! exponential backoff plus deterministic jitter. Probes that fail too many
//! times in a row are quarantined as dead and their remaining work is
//! abandoned. With a quiet [`FaultPlane`] no fault ever fires and the
//! scheduler degenerates to the plain probes × hostnames sweep.

use crate::atlas::Probe;
use crate::dns::Resolver;
use ir_bgp::RoutingUniverse;
use ir_dataplane::{AddressPlan, TraceConfig, Tracer, Traceroute};
use ir_fault::{key2, FaultDomain, FaultPlane, RetryPolicy};
use ir_topology::World;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated seconds one successful measurement occupies the platform.
const SUCCESS_COST: u64 = 2;

/// Simulated seconds a failed DNS resolution costs before the retry timer.
const DNS_COST: u64 = 1;

/// Campaign parameters.
#[derive(Debug, Clone, Default)]
pub struct CampaignConfig {
    /// Traceroute artifact model.
    pub trace: TraceConfig,
    /// Seed for traceroute artifacts.
    pub seed: u64,
    /// Measurement budget: at most this many traceroutes are executed
    /// (the platform's daily rate limit — §3.1 ran "at the maximum probing
    /// rate allowed"). `None` = unlimited.
    pub budget: Option<usize>,
    /// Retry/backoff/quarantine policy for the scheduler.
    pub retry: RetryPolicy,
}

/// What happened to the campaign, measurement by measurement.
///
/// Invariant (checked by [`Campaign::accounted`]): every planned measurement
/// ends in exactly one of `succeeded`, `abandoned`, `unresolved`, or the
/// budget-skip bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignReport {
    /// probes × hostnames measurements submitted.
    pub planned: usize,
    /// Attempt executions, including retries.
    pub attempted: usize,
    /// Measurements that produced a traceroute.
    pub succeeded: usize,
    /// Re-queues after a transient fault.
    pub retried: usize,
    /// Measurements given up: attempts exhausted or probe dead.
    pub abandoned: usize,
    /// Permanent DNS misses (hostname unknown to the resolver).
    pub unresolved: usize,
    /// Transient DNS faults injected by the plane.
    pub dns_failures: usize,
    /// Probe timeout faults injected by the plane.
    pub probe_dropouts: usize,
    /// Probes lost mid-campaign (disconnect or quarantine).
    pub probes_lost: usize,
    /// Simulated seconds at completion.
    pub clock: u64,
}

impl std::fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} planned, {} attempted, {} ok, {} retried, {} abandoned, \
             {} unresolved ({} dns faults, {} dropouts, {} probes lost), {}s",
            self.planned,
            self.attempted,
            self.succeeded,
            self.retried,
            self.abandoned,
            self.unresolved,
            self.dns_failures,
            self.probe_dropouts,
            self.probes_lost,
            self.clock
        )
    }
}

/// A completed campaign.
pub struct Campaign {
    /// All traceroutes, in (probe, hostname) submission order.
    pub traceroutes: Vec<Traceroute>,
    /// Measurements dropped because the budget ran out.
    pub skipped_for_budget: usize,
    /// Scheduler accounting.
    pub report: CampaignReport,
}

/// Scheduler state for one submitted measurement.
struct Item {
    probe: usize,
    host: usize,
    attempts: u32,
}

impl Campaign {
    /// Runs the campaign: `probes × hostnames` measurements, no faults.
    pub fn run(
        world: &World,
        universe: &RoutingUniverse,
        plan: &AddressPlan,
        probes: &[Probe],
        cfg: &CampaignConfig,
    ) -> Campaign {
        Campaign::run_with_faults(world, universe, plan, probes, cfg, &FaultPlane::quiet())
    }

    /// Runs the campaign under a fault plane. Measurements are processed in
    /// submission order while the platform is healthy; faulted attempts are
    /// re-queued at `now + backoff(attempt)` and interleave deterministically
    /// (the ready-queue is keyed by `(ready_at, submission index)`).
    pub fn run_with_faults(
        world: &World,
        universe: &RoutingUniverse,
        plan: &AddressPlan,
        probes: &[Probe],
        cfg: &CampaignConfig,
        plane: &FaultPlane,
    ) -> Campaign {
        let resolver = Resolver::new(world);
        let tracer = Tracer::new(world, universe, plan, cfg.trace, cfg.seed);
        let policy = cfg.retry;
        let hostnames: Vec<&str> = world.content.hostnames().map(|(_, h)| h).collect();

        let mut items: Vec<Item> = Vec::with_capacity(probes.len() * hostnames.len());
        for p in 0..probes.len() {
            for h in 0..hostnames.len() {
                items.push(Item {
                    probe: p,
                    host: h,
                    attempts: 0,
                });
            }
        }
        let planned = items.len();
        let mut report = CampaignReport {
            planned,
            ..CampaignReport::default()
        };
        // Ready-queue: (ready_at, submission index) min-heap.
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..planned).map(|i| Reverse((0, i))).collect();
        let mut consec = vec![0u32; probes.len()];
        let mut dead = vec![false; probes.len()];
        let mut done: Vec<(usize, Traceroute)> = Vec::with_capacity(planned);
        let mut skipped_for_budget = 0usize;
        let mut clock = 0u64;

        while let Some(Reverse((ready, i))) = heap.pop() {
            if cfg.budget.is_some_and(|b| done.len() >= b) {
                // Everything still queued — including pending retries — is
                // lost to the rate limit.
                skipped_for_budget = 1 + heap.len();
                break;
            }
            clock = clock.max(ready);
            let (p, h) = (items[i].probe, items[i].host);
            if dead[p] {
                report.abandoned += 1;
                continue;
            }
            let probe = &probes[p];
            let key = key2(probe.asn.value() as u64, h as u64);
            let attempt = items[i].attempts;
            items[i].attempts += 1;
            report.attempted += 1;
            // Mid-campaign disconnect: the probe vanishes for good.
            if plane.fires(FaultDomain::ProbeDeath, probe.asn.value() as u64, i as u64) {
                dead[p] = true;
                report.probes_lost += 1;
                report.abandoned += 1;
                clock += policy.timeout;
                continue;
            }
            // Transient faults time the attempt out.
            let dns_fault = plane.fires(FaultDomain::DnsFailure, key, attempt as u64);
            let dropout = !dns_fault && plane.fires(FaultDomain::ProbeDropout, key, attempt as u64);
            if dns_fault || dropout {
                if dns_fault {
                    report.dns_failures += 1;
                    clock += DNS_COST;
                } else {
                    report.probe_dropouts += 1;
                    clock += policy.timeout;
                    consec[p] += 1;
                    if consec[p] >= policy.quarantine_after {
                        dead[p] = true;
                        report.probes_lost += 1;
                    }
                }
                if dead[p] || items[i].attempts >= policy.max_attempts {
                    report.abandoned += 1;
                } else {
                    report.retried += 1;
                    heap.push(Reverse((clock + policy.backoff(items[i].attempts, key), i)));
                }
                continue;
            }
            let Some(ip) = resolver.resolve(hostnames[h], probe.asn) else {
                // Permanent miss: the catalog simply has no answer; retrying
                // a deterministic resolver would not change it.
                report.unresolved += 1;
                continue;
            };
            consec[p] = 0;
            let mut tr = tracer.run(probe.asn, ip);
            tr.dst_hostname = Some(hostnames[h].to_string());
            done.push((i, tr));
            clock += SUCCESS_COST;
        }

        done.sort_unstable_by_key(|(i, _)| *i);
        report.succeeded = done.len();
        report.clock = clock;
        Campaign {
            traceroutes: done.into_iter().map(|(_, tr)| tr).collect(),
            skipped_for_budget,
            report,
        }
    }

    /// True iff every planned measurement is accounted for.
    pub fn accounted(&self) -> bool {
        self.report.succeeded
            + self.report.abandoned
            + self.report.unresolved
            + self.skipped_for_budget
            == self.report.planned
    }

    /// Number of traceroutes that reached their destination.
    pub fn reached(&self) -> usize {
        self.traceroutes.iter().filter(|t| t.reached).count()
    }

    /// Distinct destination ASes (ground truth) — the paper's "218
    /// destination ASes" statistic.
    pub fn destination_ases(&self) -> usize {
        let mut asns: Vec<_> = self
            .traceroutes
            .iter()
            .filter(|t| t.reached)
            .filter_map(|t| t.hops.last().and_then(|h| h.true_asn))
            .collect();
        asns.sort_unstable();
        asns.dedup();
        asns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atlas::ProbePool;
    use ir_fault::FaultConfig;
    use ir_topology::GeneratorConfig;
    use std::sync::OnceLock;

    struct Fx {
        world: World,
        universe: RoutingUniverse,
        plan: AddressPlan,
        pool: ProbePool,
    }

    fn fx() -> &'static Fx {
        static F: OnceLock<Fx> = OnceLock::new();
        F.get_or_init(|| {
            let world = GeneratorConfig::tiny().build(23);
            let universe = RoutingUniverse::compute_all(&world);
            let plan = AddressPlan::build(&world);
            let pool = ProbePool::install(&world, 23);
            Fx {
                world,
                universe,
                plan,
                pool,
            }
        })
    }

    #[test]
    fn campaign_produces_probe_times_hostname_traceroutes() {
        let f = fx();
        let probes = f.pool.select_balanced(30);
        let c = Campaign::run(
            &f.world,
            &f.universe,
            &f.plan,
            &probes,
            &CampaignConfig::default(),
        );
        assert_eq!(
            c.traceroutes.len(),
            probes.len() * f.world.content.hostname_count()
        );
        // The overwhelming majority reach their destination.
        assert!(c.reached() as f64 >= 0.9 * c.traceroutes.len() as f64);
        assert!(c.accounted());
        assert_eq!(c.report.retried, 0);
        assert_eq!(c.report.abandoned, 0);
    }

    #[test]
    fn destinations_exceed_provider_count() {
        let f = fx();
        let probes = f.pool.select_balanced(60);
        let c = Campaign::run(
            &f.world,
            &f.universe,
            &f.plan,
            &probes,
            &CampaignConfig::default(),
        );
        // Off-net caches inflate the destination-AS count beyond the number
        // of content providers — the paper's observation.
        assert!(
            c.destination_ases() > f.world.content.providers().len(),
            "{} destinations for {} providers",
            c.destination_ases(),
            f.world.content.providers().len()
        );
    }

    #[test]
    fn budget_truncates_the_campaign() {
        let f = fx();
        let probes = f.pool.select_balanced(30);
        let cfg = CampaignConfig {
            budget: Some(25),
            ..CampaignConfig::default()
        };
        let c = Campaign::run(&f.world, &f.universe, &f.plan, &probes, &cfg);
        assert_eq!(c.traceroutes.len(), 25);
        assert_eq!(
            c.skipped_for_budget,
            probes.len() * f.world.content.hostname_count() - 25
        );
        assert!(c.accounted());
        // Unlimited leaves nothing behind.
        let c2 = Campaign::run(
            &f.world,
            &f.universe,
            &f.plan,
            &probes,
            &CampaignConfig::default(),
        );
        assert_eq!(c2.skipped_for_budget, 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let f = fx();
        let probes = f.pool.select_balanced(12);
        let cfg = CampaignConfig::default();
        let a = Campaign::run(&f.world, &f.universe, &f.plan, &probes, &cfg);
        let b = Campaign::run(&f.world, &f.universe, &f.plan, &probes, &cfg);
        assert_eq!(a.traceroutes.len(), b.traceroutes.len());
        for (x, y) in a.traceroutes.iter().zip(&b.traceroutes) {
            assert_eq!(x.hops, y.hops);
        }
    }

    #[test]
    fn faulted_campaign_retries_and_accounts_for_everything() {
        let f = fx();
        let probes = f.pool.select_balanced(30);
        let cfg = CampaignConfig::default();
        let plane = FaultPlane::new(
            FaultConfig {
                probe_dropout: 0.25,
                dns_failure: 0.10,
                probe_death: 0.01,
                ..FaultConfig::quiet()
            },
            99,
        );
        let c = Campaign::run_with_faults(&f.world, &f.universe, &f.plan, &probes, &cfg, &plane);
        assert!(c.accounted(), "{}", c.report);
        assert!(c.report.retried > 0, "{}", c.report);
        assert!(c.report.succeeded > 0, "{}", c.report);
        assert!(
            c.report.attempted > c.report.planned,
            "retries exceed planned: {}",
            c.report
        );
        // Retries push successes back up despite the fault rates.
        assert!(
            c.report.succeeded as f64 >= 0.8 * c.report.planned as f64,
            "{}",
            c.report
        );
        assert!(c.report.clock > 0);
        // The plane's own counters saw the injected faults.
        assert_eq!(
            plane.stats().of(FaultDomain::DnsFailure),
            c.report.dns_failures as u64
        );
        assert_eq!(
            plane.stats().of(FaultDomain::ProbeDropout),
            c.report.probe_dropouts as u64
        );
    }

    #[test]
    fn dead_probes_are_quarantined() {
        let f = fx();
        let probes = f.pool.select_balanced(20);
        let cfg = CampaignConfig {
            retry: RetryPolicy {
                quarantine_after: 2,
                max_attempts: 8,
                ..RetryPolicy::default()
            },
            ..CampaignConfig::default()
        };
        let plane = FaultPlane::new(
            FaultConfig {
                probe_dropout: 0.9,
                ..FaultConfig::quiet()
            },
            7,
        );
        let c = Campaign::run_with_faults(&f.world, &f.universe, &f.plan, &probes, &cfg, &plane);
        assert!(c.accounted(), "{}", c.report);
        assert!(c.report.probes_lost > 0, "{}", c.report);
        assert!(c.report.abandoned > 0, "{}", c.report);
    }

    #[test]
    fn quiet_plane_is_identical_to_plain_run() {
        let f = fx();
        let probes = f.pool.select_balanced(12);
        let cfg = CampaignConfig::default();
        let a = Campaign::run(&f.world, &f.universe, &f.plan, &probes, &cfg);
        let b = Campaign::run_with_faults(
            &f.world,
            &f.universe,
            &f.plan,
            &probes,
            &cfg,
            &FaultPlane::quiet(),
        );
        assert_eq!(a.traceroutes.len(), b.traceroutes.len());
        for (x, y) in a.traceroutes.iter().zip(&b.traceroutes) {
            assert_eq!(x.hops, y.hops);
            assert_eq!(x.dst_hostname, y.dst_hostname);
        }
        assert_eq!(a.report, b.report);
    }
}
