//! The passive measurement campaign (§3.1).
//!
//! Every selected probe resolves each of the content hostnames through the
//! CDN-aware [`crate::dns::Resolver`] and traceroutes the result.
//! The output is the raw traceroute dataset the paper's Figure 1–3 and
//! Tables 3–4 analyses consume.

use crate::atlas::Probe;
use crate::dns::Resolver;
use ir_bgp::RoutingUniverse;
use ir_dataplane::{AddressPlan, TraceConfig, Tracer, Traceroute};
use ir_topology::World;

/// Campaign parameters.
#[derive(Debug, Clone, Default)]
pub struct CampaignConfig {
    /// Traceroute artifact model.
    pub trace: TraceConfig,
    /// Seed for traceroute artifacts.
    pub seed: u64,
    /// Measurement budget: at most this many traceroutes are executed
    /// (the platform's daily rate limit — §3.1 ran "at the maximum probing
    /// rate allowed"). `None` = unlimited.
    pub budget: Option<usize>,
}

/// A completed campaign.
pub struct Campaign {
    /// All traceroutes, in (probe, hostname) order.
    pub traceroutes: Vec<Traceroute>,
    /// Measurements dropped because the budget ran out.
    pub skipped_for_budget: usize,
}

impl Campaign {
    /// Runs the campaign: `probes × hostnames` measurements.
    pub fn run(
        world: &World,
        universe: &RoutingUniverse,
        plan: &AddressPlan,
        probes: &[Probe],
        cfg: &CampaignConfig,
    ) -> Campaign {
        let resolver = Resolver::new(world);
        let tracer = Tracer::new(world, universe, plan, cfg.trace, cfg.seed);
        let mut traceroutes = Vec::with_capacity(probes.len() * world.content.hostname_count());
        let mut skipped_for_budget = 0usize;
        'outer: for probe in probes {
            for (_, hostname) in world.content.hostnames() {
                if let Some(budget) = cfg.budget {
                    if traceroutes.len() >= budget {
                        // Everything else this probe (and later probes)
                        // would have measured is lost to the rate limit.
                        skipped_for_budget =
                            probes.len() * world.content.hostname_count() - traceroutes.len();
                        break 'outer;
                    }
                }
                let Some(ip) = resolver.resolve(hostname, probe.asn) else {
                    continue;
                };
                let mut tr = tracer.run(probe.asn, ip);
                tr.dst_hostname = Some(hostname.to_string());
                traceroutes.push(tr);
            }
        }
        Campaign {
            traceroutes,
            skipped_for_budget,
        }
    }

    /// Number of traceroutes that reached their destination.
    pub fn reached(&self) -> usize {
        self.traceroutes.iter().filter(|t| t.reached).count()
    }

    /// Distinct destination ASes (ground truth) — the paper's "218
    /// destination ASes" statistic.
    pub fn destination_ases(&self) -> usize {
        let mut asns: Vec<_> = self
            .traceroutes
            .iter()
            .filter(|t| t.reached)
            .filter_map(|t| t.hops.last().and_then(|h| h.true_asn))
            .collect();
        asns.sort_unstable();
        asns.dedup();
        asns.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atlas::ProbePool;
    use ir_topology::GeneratorConfig;
    use std::sync::OnceLock;

    struct Fx {
        world: World,
        universe: RoutingUniverse,
        plan: AddressPlan,
        pool: ProbePool,
    }

    fn fx() -> &'static Fx {
        static F: OnceLock<Fx> = OnceLock::new();
        F.get_or_init(|| {
            let world = GeneratorConfig::tiny().build(23);
            let universe = RoutingUniverse::compute_all(&world);
            let plan = AddressPlan::build(&world);
            let pool = ProbePool::install(&world, 23);
            Fx {
                world,
                universe,
                plan,
                pool,
            }
        })
    }

    #[test]
    fn campaign_produces_probe_times_hostname_traceroutes() {
        let f = fx();
        let probes = f.pool.select_balanced(30);
        let c = Campaign::run(
            &f.world,
            &f.universe,
            &f.plan,
            &probes,
            &CampaignConfig::default(),
        );
        assert_eq!(
            c.traceroutes.len(),
            probes.len() * f.world.content.hostname_count()
        );
        // The overwhelming majority reach their destination.
        assert!(c.reached() as f64 >= 0.9 * c.traceroutes.len() as f64);
    }

    #[test]
    fn destinations_exceed_provider_count() {
        let f = fx();
        let probes = f.pool.select_balanced(60);
        let c = Campaign::run(
            &f.world,
            &f.universe,
            &f.plan,
            &probes,
            &CampaignConfig::default(),
        );
        // Off-net caches inflate the destination-AS count beyond the number
        // of content providers — the paper's observation.
        assert!(
            c.destination_ases() > f.world.content.providers().len(),
            "{} destinations for {} providers",
            c.destination_ases(),
            f.world.content.providers().len()
        );
    }

    #[test]
    fn budget_truncates_the_campaign() {
        let f = fx();
        let probes = f.pool.select_balanced(30);
        let cfg = CampaignConfig {
            budget: Some(25),
            ..CampaignConfig::default()
        };
        let c = Campaign::run(&f.world, &f.universe, &f.plan, &probes, &cfg);
        assert_eq!(c.traceroutes.len(), 25);
        assert_eq!(
            c.skipped_for_budget,
            probes.len() * f.world.content.hostname_count() - 25
        );
        // Unlimited leaves nothing behind.
        let c2 = Campaign::run(
            &f.world,
            &f.universe,
            &f.plan,
            &probes,
            &CampaignConfig::default(),
        );
        assert_eq!(c2.skipped_for_budget, 0);
    }

    #[test]
    fn campaign_is_deterministic() {
        let f = fx();
        let probes = f.pool.select_balanced(12);
        let cfg = CampaignConfig::default();
        let a = Campaign::run(&f.world, &f.universe, &f.plan, &probes, &cfg);
        let b = Campaign::run(&f.world, &f.universe, &f.plan, &probes, &cfg);
        assert_eq!(a.traceroutes.len(), b.traceroutes.len());
        for (x, y) in a.traceroutes.iter().zip(&b.traceroutes) {
            assert_eq!(x.hops, y.hops);
        }
    }
}
