//! The RIPE-Atlas-like probe platform.
//!
//! Real Atlas has broad coverage but is skewed toward Europe; §3.1 of the
//! paper therefore samples **an equal number of probes per continent**,
//! round-robin across countries and ASes, so selected probes cover a wide
//! range of ASes. Probes live near the edge: eyeballs, enterprises, small
//! ISPs, and a few education networks — the Table 1 population.

use ir_topology::graph::AsRole;
use ir_topology::World;
use ir_types::{Asn, Continent, CountryId};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeMap;

/// One probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probe {
    /// Platform-wide probe id.
    pub id: u32,
    /// AS hosting the probe.
    pub asn: Asn,
    /// Country of the hosting AS.
    pub country: CountryId,
    /// Continent of the hosting AS.
    pub continent: Continent,
}

/// The platform: every installed probe, plus selection utilities.
#[derive(Debug, Clone)]
pub struct ProbePool {
    probes: Vec<Probe>,
    /// Daily traceroute budget (the paper ran at the maximum allowed rate).
    pub daily_budget: usize,
}

impl ProbePool {
    /// Installs probes across the world: every eyeball AS hosts 1–3 probes,
    /// enterprises and small ISPs occasionally host one, with a **Europe
    /// skew** (extra probes in European ASes) mirroring the real platform.
    pub fn install(world: &World, seed: u64) -> ProbePool {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA71A5);
        let mut probes = Vec::new();
        let mut id = 0u32;
        for node in world.graph.nodes() {
            let continent = world.geo.continent_of_country(node.home_country);
            let base = match node.role {
                AsRole::Eyeball => rng.random_range(1..=3usize),
                AsRole::Enterprise => usize::from(rng.random_bool(0.4)),
                AsRole::Transit if node.asn.value() >= 5_000 => usize::from(rng.random_bool(0.5)),
                AsRole::Transit => usize::from(rng.random_bool(0.15)),
                AsRole::Education => usize::from(rng.random_bool(0.6)),
                _ => 0,
            };
            let skew = if continent == Continent::Europe && base > 0 {
                rng.random_range(0..=2usize)
            } else {
                0
            };
            for _ in 0..base + skew {
                probes.push(Probe {
                    id,
                    asn: node.asn,
                    country: node.home_country,
                    continent,
                });
                id += 1;
            }
        }
        ProbePool {
            probes,
            daily_budget: 30_000,
        }
    }

    /// All installed probes.
    pub fn probes(&self) -> &[Probe] {
        &self.probes
    }

    /// §3.1 sampling: an equal share of `n` per continent, chosen
    /// round-robin over countries and, within a country, over ASes, so the
    /// selection never concentrates in one network. Returns fewer than `n`
    /// when a continent runs out of probes.
    pub fn select_balanced(&self, n: usize) -> Vec<Probe> {
        let per_continent = n / Continent::ALL.len();
        let mut selected = Vec::new();
        for continent in Continent::ALL {
            // country → asn → probes, all ordered for determinism.
            let mut by_country: BTreeMap<CountryId, BTreeMap<Asn, Vec<&Probe>>> = BTreeMap::new();
            for p in self.probes.iter().filter(|p| p.continent == continent) {
                by_country
                    .entry(p.country)
                    .or_default()
                    .entry(p.asn)
                    .or_default()
                    .push(p);
            }
            let mut taken = 0;
            // Round-robin over countries; within a country, rotate ASes.
            let mut country_queues: Vec<Vec<&Probe>> = by_country
                .into_values()
                .map(|by_as| {
                    // Interleave the country's ASes (one probe per AS per pass).
                    let mut lists: Vec<Vec<&Probe>> = by_as.into_values().collect();
                    let mut out = Vec::new();
                    let mut more = true;
                    while more {
                        more = false;
                        for l in &mut lists {
                            if let Some(p) = l.pop() {
                                out.push(p);
                                more = true;
                            }
                        }
                    }
                    // `out` is pass-major: one probe per AS, then second
                    // probes, … — exactly the order round-robin wants.
                    out
                })
                .collect();
            'outer: loop {
                let mut progressed = false;
                for q in &mut country_queues {
                    if taken >= per_continent {
                        break 'outer;
                    }
                    if let Some(p) = q.first().copied() {
                        q.remove(0);
                        selected.push(*p);
                        taken += 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
        }
        selected
    }

    /// §3.2 greedy heuristic: pick up to `k` probes maximizing the number
    /// of distinct ASes traversed on their (precomputed) default paths
    /// toward the testbed. `paths[i]` is the AS path from probe `i`.
    pub fn select_greedy_cover(&self, paths: &[(Probe, Vec<Asn>)], k: usize) -> Vec<Probe> {
        let mut chosen: Vec<Probe> = Vec::new();
        let mut covered: std::collections::BTreeSet<Asn> = std::collections::BTreeSet::new();
        let mut remaining: Vec<&(Probe, Vec<Asn>)> = paths.iter().collect();
        while chosen.len() < k && !remaining.is_empty() {
            // Pick the probe whose path adds the most uncovered ASes;
            // deterministic tie-break by probe id.
            let Some((pos, _)) = remaining.iter().enumerate().max_by_key(|(_, (p, path))| {
                let gain = path.iter().filter(|a| !covered.contains(a)).count();
                (gain, std::cmp::Reverse(p.id))
            }) else {
                break;
            };
            let (probe, path) = remaining.remove(pos);
            let gain = path.iter().filter(|a| !covered.contains(a)).count();
            if gain == 0 && !chosen.is_empty() {
                break; // nothing left to cover
            }
            covered.extend(path.iter().copied());
            chosen.push(*probe);
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_topology::GeneratorConfig;
    use std::sync::OnceLock;

    fn pool() -> &'static (World, ProbePool) {
        static P: OnceLock<(World, ProbePool)> = OnceLock::new();
        P.get_or_init(|| {
            let w = GeneratorConfig::default().build(17);
            let pool = ProbePool::install(&w, 17);
            (w, pool)
        })
    }

    #[test]
    fn installation_is_edge_heavy_and_europe_skewed() {
        let (w, pool) = pool();
        assert!(pool.probes().len() > 300, "platform has substance");
        // Count per continent: Europe must be the (or near the) maximum.
        let mut per: BTreeMap<Continent, usize> = BTreeMap::new();
        for p in pool.probes() {
            *per.entry(p.continent).or_default() += 1;
        }
        let eu = per[&Continent::Europe];
        let max = per.values().copied().max().unwrap();
        assert!(
            eu as f64 >= 0.8 * max as f64,
            "Europe skew present: {per:?}"
        );
        // Probes never sit in tier-1s or content ASes.
        for p in pool.probes() {
            let idx = w.graph.index_of(p.asn).unwrap();
            let role = w.graph.node(idx).role;
            assert!(
                !matches!(role, AsRole::Content | AsRole::CableOperator),
                "probe in {role:?}"
            );
        }
    }

    #[test]
    fn balanced_selection_is_continent_equal() {
        let (_, pool) = pool();
        let sel = pool.select_balanced(120);
        let mut per: BTreeMap<Continent, usize> = BTreeMap::new();
        for p in &sel {
            *per.entry(p.continent).or_default() += 1;
        }
        for c in Continent::ALL {
            assert_eq!(per.get(&c).copied().unwrap_or(0), 20, "equal share on {c}");
        }
        // Probes spread across many ASes.
        let mut asns: Vec<Asn> = sel.iter().map(|p| p.asn).collect();
        asns.sort_unstable();
        asns.dedup();
        assert!(
            asns.len() >= 60,
            "selection covers ≥60 ASes, got {}",
            asns.len()
        );
    }

    #[test]
    fn balanced_selection_is_deterministic() {
        let (_, pool) = pool();
        let a = pool.select_balanced(60);
        let b = pool.select_balanced(60);
        assert_eq!(a, b);
    }

    #[test]
    fn greedy_cover_maximizes_new_ases() {
        let (_, pool) = pool();
        let p = pool.probes()[0];
        let q = pool.probes()[1];
        let r = pool.probes()[2];
        let paths = vec![
            (p, vec![Asn(1), Asn(2)]),
            (q, vec![Asn(1), Asn(2), Asn(3)]), // superset of p
            (r, vec![Asn(9)]),
        ];
        let chosen = pool.select_greedy_cover(&paths, 2);
        assert_eq!(chosen.len(), 2);
        // q first (covers 3), then r (adds 1); p adds nothing.
        assert_eq!(chosen[0].id, q.id);
        assert_eq!(chosen[1].id, r.id);
    }
}
