//! Route collectors (the RouteViews / RIPE RIS role in §3.2).
//!
//! Collectors peer with vantage ASes and archive the paths those ASes
//! export, on a fixed 15-minute cadence. The active experiments watch
//! these dumps to see how the control plane reacted to each announcement
//! round.

use ir_bgp::PrefixSim;
use ir_fault::{FaultDomain, FaultPlane};
use ir_types::{Asn, Prefix, Timestamp};
use serde::{Deserialize, Serialize};

/// Collector sampling interval (§3.2: "collect BGP feeds every 15 min").
pub const FEED_INTERVAL: u64 = 15 * 60;

/// One archived table dump: the path each vantage exported at `at`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeedSnapshot {
    pub at: Timestamp,
    pub prefix: Prefix,
    /// (vantage, full AS path vantage-first).
    pub paths: Vec<(Asn, Vec<Asn>)>,
}

impl FeedSnapshot {
    /// The path a given vantage exported, if it had a route.
    pub fn path_of(&self, vantage: Asn) -> Option<&[Asn]> {
        self.paths
            .iter()
            .find(|(v, _)| *v == vantage)
            .map(|(_, p)| p.as_slice())
    }
}

/// A collector service bound to its vantage list.
#[derive(Debug, Clone)]
pub struct Collectors {
    vantages: Vec<Asn>,
}

impl Collectors {
    /// Creates the service.
    pub fn new(mut vantages: Vec<Asn>) -> Collectors {
        vantages.sort_unstable();
        vantages.dedup();
        Collectors { vantages }
    }

    /// The vantage ASes.
    pub fn vantages(&self) -> &[Asn] {
        &self.vantages
    }

    /// Takes one dump of the current state.
    pub fn snapshot(&self, sim: &PrefixSim<'_>, at: Timestamp) -> FeedSnapshot {
        self.snapshot_with_faults(sim, at, &FaultPlane::quiet())
    }

    /// [`Collectors::snapshot`] through a fault plane: a vantage whose feed
    /// has a gap in this dump interval is silently absent from the archive —
    /// the way a collector outage looks in real RouteViews/RIS data.
    pub fn snapshot_with_faults(
        &self,
        sim: &PrefixSim<'_>,
        at: Timestamp,
        plane: &FaultPlane,
    ) -> FeedSnapshot {
        let world = sim.world();
        let interval = at.secs() / FEED_INTERVAL;
        let mut paths = Vec::new();
        for &v in &self.vantages {
            if plane.fires(FaultDomain::FeedGap, v.value() as u64, interval) {
                continue;
            }
            let Some(idx) = world.graph.index_of(v) else {
                continue;
            };
            let Some(route) = sim.best(idx) else { continue };
            let mut path = vec![v];
            if !route.is_local() {
                path.extend(route.path.sequence_asns());
            }
            paths.push((v, path));
        }
        FeedSnapshot {
            at,
            prefix: sim.prefix(),
            paths,
        }
    }

    /// The dump timestamps inside a time window (multiples of the interval).
    pub fn schedule(&self, from: Timestamp, to: Timestamp) -> Vec<Timestamp> {
        let mut out = Vec::new();
        let mut t = from.secs().div_ceil(FEED_INTERVAL) * FEED_INTERVAL;
        while t <= to.secs() {
            out.push(Timestamp(t));
            t += FEED_INTERVAL;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_bgp::Announcement;
    use ir_topology::GeneratorConfig;

    #[test]
    fn snapshot_captures_vantage_paths() {
        let w = GeneratorConfig::tiny().build(37);
        let stub = w
            .graph
            .nodes()
            .iter()
            .find(|n| n.asn.value() >= 20_000)
            .unwrap();
        let (origin, prefix) = (stub.asn, stub.prefixes[0]);
        let vantages: Vec<Asn> = w
            .graph
            .nodes()
            .iter()
            .filter(|n| n.asn.value() < 1000)
            .map(|n| n.asn)
            .take(4)
            .collect();
        let c = Collectors::new(vantages.clone());
        let mut sim = PrefixSim::new(&w, prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        let snap = c.snapshot(&sim, Timestamp(FEED_INTERVAL));
        assert_eq!(snap.paths.len(), vantages.len());
        for v in &vantages {
            let p = snap.path_of(*v).expect("vantage had a route");
            assert_eq!(p[0], *v);
            assert_eq!(*p.last().unwrap(), origin);
        }
        assert_eq!(snap.path_of(Asn(999_999)), None);
    }

    #[test]
    fn schedule_is_interval_aligned() {
        let c = Collectors::new(vec![Asn(1)]);
        let s = c.schedule(Timestamp(100), Timestamp(3 * FEED_INTERVAL));
        assert_eq!(
            s,
            vec![
                Timestamp(FEED_INTERVAL),
                Timestamp(2 * FEED_INTERVAL),
                Timestamp(3 * FEED_INTERVAL)
            ]
        );
        assert!(c.schedule(Timestamp(10), Timestamp(20)).is_empty());
    }

    #[test]
    fn duplicate_vantages_deduplicated() {
        let c = Collectors::new(vec![Asn(5), Asn(5), Asn(1)]);
        assert_eq!(c.vantages(), &[Asn(1), Asn(5)]);
    }
}
