//! CDN-style DNS resolution.
//!
//! Content providers answer DNS queries with the deployment closest to the
//! client: an off-net cache inside the client's own ISP if one exists, else
//! a deployment in the client's country, continent, and finally any. This
//! is why the paper's 34 hostnames resolve into 218 destination ASes.

use ir_topology::content::Deployment;
use ir_topology::World;
use ir_types::{Asn, Ipv4};

/// Resolver bound to a world's content catalog and geography.
pub struct Resolver<'w> {
    world: &'w World,
}

impl<'w> Resolver<'w> {
    /// Binds the resolver.
    pub fn new(world: &'w World) -> Resolver<'w> {
        Resolver { world }
    }

    /// Resolves `hostname` for a client in `client_as`. Returns the chosen
    /// server address, or `None` for an unknown hostname.
    pub fn resolve(&self, hostname: &str, client_as: Asn) -> Option<Ipv4> {
        let provider = self.world.content.provider_of(hostname)?;
        let client_idx = self.world.graph.index_of(client_as)?;
        let client_country = self.world.graph.node(client_idx).home_country;
        let client_continent = self.world.geo.continent_of_country(client_country);

        let score = |d: &Deployment| -> u8 {
            // Lower is better.
            if d.host_as == client_as {
                return 0; // cache inside the client's own AS
            }
            let Some(idx) = self.world.graph.index_of(d.host_as) else {
                return 4;
            };
            let c = self.world.graph.node(idx).home_country;
            if c == client_country {
                1
            } else if self.world.geo.continent_of_country(c) == client_continent {
                2
            } else {
                3
            }
        };
        // Among the deployments with the best score, spread clients
        // deterministically by client ASN (CDN load balancing): this is
        // also what exposes *different prefixes* of one provider to
        // different clients — the precondition for observing
        // prefix-specific policies in the wild.
        let best = provider.deployments.iter().map(score).min()?;
        let candidates: Vec<&Deployment> = provider
            .deployments
            .iter()
            .filter(|d| score(d) == best)
            .collect();
        let pick = (client_as.value() as usize) % candidates.len();
        Some(candidates[pick].server_ip())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_topology::GeneratorConfig;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| GeneratorConfig::default().build(19))
    }

    #[test]
    fn unknown_hostname_is_none() {
        let r = Resolver::new(world());
        assert_eq!(r.resolve("nope.example", Asn(20_000)), None);
    }

    #[test]
    fn offnet_host_gets_its_own_cache() {
        let w = world();
        let r = Resolver::new(w);
        // Find a provider with an off-net deployment and query from that
        // hosting AS.
        let (provider, dep) = w
            .content
            .providers()
            .iter()
            .find_map(|p| p.deployments.iter().find(|d| d.offnet).map(|d| (p, d)))
            .expect("off-nets exist");
        let ip = r.resolve(&provider.hostnames[0], dep.host_as).unwrap();
        assert_eq!(ip, dep.server_ip(), "client resolved to its in-AS cache");
    }

    #[test]
    fn resolution_is_deterministic_and_valid() {
        let w = world();
        let r = Resolver::new(w);
        let client = w
            .graph
            .nodes()
            .iter()
            .find(|n| n.asn.value() >= 20_000)
            .unwrap()
            .asn;
        for (_, hostname) in w.content.hostnames() {
            let a = r
                .resolve(hostname, client)
                .expect("every hostname resolves");
            let b = r.resolve(hostname, client).unwrap();
            assert_eq!(a, b);
            // Resolved address belongs to a deployment of this provider.
            let p = w.content.provider_of(hostname).unwrap();
            assert!(p.deployments.iter().any(|d| d.server_ip() == a));
        }
    }

    #[test]
    fn different_clients_can_get_different_servers() {
        let w = world();
        let r = Resolver::new(w);
        // The Akamai-like provider (index 0) has many off-nets; two clients
        // on different continents should not all land on one server.
        let host = &w.content.providers()[0].hostnames[0];
        let mut ips: Vec<Ipv4> = w
            .graph
            .nodes()
            .iter()
            .filter(|n| n.asn.value() >= 20_000)
            .take(50)
            .filter_map(|n| r.resolve(host, n.asn))
            .collect();
        ips.sort_unstable();
        ips.dedup();
        assert!(ips.len() > 1, "CDN steering spreads clients");
    }
}
