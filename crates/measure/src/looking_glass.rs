//! Looking-glass servers (§4.3 validation).
//!
//! Some transit ASes run public looking glasses that reveal their full set
//! of candidate routes for a prefix — the only ground-truth-adjacent data a
//! measurement study can get. The paper found looking glasses in 28 of the
//! 149 neighbor ASes it wanted to validate and manually checked 10
//! prefix-specific-policy inferences against them (78% precision for
//! criterion 1).

use ir_bgp::{Announcement, PrefixSim, Route};
use ir_topology::graph::AsRole;
use ir_topology::World;
use ir_types::Timestamp;
use ir_types::{Asn, Prefix};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::BTreeSet;

/// The set of ASes that operate a looking glass.
#[derive(Debug, Clone)]
pub struct LookingGlassNet {
    hosts: BTreeSet<Asn>,
}

impl LookingGlassNet {
    /// Seeds the deployment: a fraction of transit ASes run a glass.
    pub fn deploy(world: &World, fraction: f64, seed: u64) -> LookingGlassNet {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x100C);
        let mut hosts = BTreeSet::new();
        for node in world.graph.nodes() {
            if node.role == AsRole::Transit && rng.random_bool(fraction) {
                hosts.insert(node.asn);
            }
        }
        LookingGlassNet { hosts }
    }

    /// Whether `asn` hosts a looking glass.
    pub fn has_glass(&self, asn: Asn) -> bool {
        self.hosts.contains(&asn)
    }

    /// All hosts.
    pub fn hosts(&self) -> impl Iterator<Item = Asn> + '_ {
        self.hosts.iter().copied()
    }

    /// Number of glasses deployed.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether no glasses exist.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }

    /// Queries the glass at `host` for its candidate routes toward
    /// `prefix`, converging the prefix on demand (`None` if the AS hosts no
    /// glass). This is the "show ip bgp" view: all usable paths, best
    /// first.
    pub fn query(
        &self,
        world: &World,
        host: Asn,
        prefix: Prefix,
        origin: Asn,
    ) -> Option<Vec<Route>> {
        if !self.has_glass(host) {
            return None;
        }
        let mut sim = PrefixSim::new(world, prefix);
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        self.query_sim(&sim, host)
    }

    /// Like [`LookingGlassNet::query`], but against an already-converged
    /// simulation — lets callers amortize convergence over many hosts.
    pub fn query_sim(&self, sim: &PrefixSim<'_>, host: Asn) -> Option<Vec<Route>> {
        if !self.has_glass(host) {
            return None;
        }
        let idx = sim.world().graph.index_of(host)?;
        let mut cands = sim.candidates(idx);
        cands.sort_by(ir_bgp::decision::compare);
        Some(cands)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_topology::GeneratorConfig;

    #[test]
    fn deployment_covers_transit_only() {
        let w = GeneratorConfig::tiny().build(41);
        let lg = LookingGlassNet::deploy(&w, 0.5, 1);
        assert!(!lg.is_empty());
        for h in lg.hosts() {
            let idx = w.graph.index_of(h).unwrap();
            assert_eq!(w.graph.node(idx).role, AsRole::Transit);
        }
    }

    #[test]
    fn query_returns_best_first() {
        let w = GeneratorConfig::tiny().build(41);
        let lg = LookingGlassNet::deploy(&w, 1.0, 1);
        let stub = w
            .graph
            .nodes()
            .iter()
            .find(|n| n.asn.value() >= 20_000)
            .unwrap();
        let host = lg.hosts().next().unwrap();
        let routes = lg
            .query(&w, host, stub.prefixes[0], stub.asn)
            .expect("host has a glass");
        if routes.len() >= 2 {
            assert!(
                ir_bgp::decision::compare(&routes[0], &routes[1]) != std::cmp::Ordering::Greater
            );
        }
    }

    #[test]
    fn no_glass_no_answer() {
        let w = GeneratorConfig::tiny().build(41);
        let lg = LookingGlassNet::deploy(&w, 0.0, 1);
        let stub = w
            .graph
            .nodes()
            .iter()
            .find(|n| n.asn.value() >= 20_000)
            .unwrap();
        assert!(lg.query(&w, Asn(100), stub.prefixes[0], stub.asn).is_none());
        assert_eq!(lg.len(), 0);
    }
}
