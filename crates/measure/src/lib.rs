#![forbid(unsafe_code)]
// Library code must degrade gracefully, never panic on data: unwrap/expect
// are denied outside tests (gate enforced by scripts/check.sh).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Measurement platforms: the paper's §3 apparatus.
//!
//! * [`atlas`] — a RIPE-Atlas-like probe platform: probes hosted in edge
//!   ASes, the paper's continent-balanced round-robin sampling (§3.1), a
//!   probing budget, and the greedy probe-selection heuristic that
//!   maximizes AS coverage toward the testbed (§3.2);
//! * [`dns`] — CDN-style DNS resolution mapping a hostname to the closest
//!   deployment for each client AS (why traceroutes to 34 hostnames end in
//!   hundreds of destination ASes);
//! * [`campaign`] — the passive traceroute campaign: every probe resolves
//!   and traceroutes every content hostname;
//! * [`peering`] — the PEERING-like testbed: announcements via university
//!   muxes at 90-minute rounds, the iterative poisoning driver that
//!   discovers alternate routes, and the magnet/anycast schedule (§3.2);
//! * [`collectors`] — RouteViews/RIS-like collectors sampling feeds every
//!   15 minutes;
//! * [`looking_glass`] — looking-glass servers hosted by a subset of
//!   transit ASes, used to validate prefix-specific-policy inferences
//!   (§4.3).

pub mod atlas;
pub mod campaign;
pub mod collectors;
pub mod dns;
pub mod looking_glass;
pub mod peering;

pub use atlas::{Probe, ProbePool};
pub use campaign::{Campaign, CampaignConfig, CampaignReport};
pub use collectors::Collectors;
pub use dns::Resolver;
pub use looking_glass::LookingGlassNet;
pub use peering::{AlternateDiscovery, MagnetRun, ObservationSetup, PathSuffix, Peering};
