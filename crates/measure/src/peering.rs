//! The PEERING-like testbed (§3.2).
//!
//! The testbed operates one ASN and a set of research prefixes it can
//! announce through its university "muxes" (its providers — six in one
//! country and one abroad, like the real deployment). Announcements change
//! at most once per 90 minutes (route-flap dampening etiquette); poisoned
//! ASNs ride in an AS-set surrounded by the testbed's own number.
//!
//! Two experiment drivers live here:
//!
//! * [`Peering::discover_alternates`] — iteratively poison the target AS's
//!   current next hop to force it onto ever-less-preferred routes,
//!   recording the revealed preference order;
//! * [`Peering::run_magnet`] — announce from a single *magnet* mux, wait
//!   for convergence, then anycast from all muxes; whether an AS sticks
//!   with the magnet route or switches reveals which BGP decision step it
//!   applied (analyzed by `ir-core::magnet`, Table 2).
//!
//! Both observe the world only through measurement channels: collector
//! feeds at vantage ASes and (control-plane equivalents of) traceroutes
//! from monitor probes. Interdomain routing is destination-based, so one
//! observed path exposes the route of every AS along it.

use ir_bgp::decision::{self, DecisionStep};
use ir_bgp::{Announcement, PrefixSim, SimContext};
use ir_fault::{FaultDomain, FaultPlane};
use ir_topology::World;
use ir_types::{Asn, Prefix, Timestamp};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The 90-minute announcement round (§3.2).
pub const ROUND: u64 = 90 * 60;

/// The 5-minute convergence wait between magnet and anycast.
pub const MAGNET_WAIT: u64 = 5 * 60;

/// An AS-path suffix sharing its backing allocation with every other
/// suffix cut from the same observed path.
///
/// [`observe_routes`] records a suffix for *every* AS on an observed path;
/// materializing each as its own `Vec` is O(len²) allocation per path per
/// vantage per event. Instead all suffixes of one path alias a single
/// `Arc<[Asn]>` and differ only in their start offset. The type derefs to
/// `[Asn]`, and equality/ordering compare the visible slice, so call sites
/// treat it exactly like a path vector.
#[derive(Debug, Clone)]
pub struct PathSuffix {
    path: Arc<[Asn]>,
    start: usize,
}

impl PathSuffix {
    /// The suffix of `path` starting at `start`.
    pub fn new(path: Arc<[Asn]>, start: usize) -> PathSuffix {
        debug_assert!(start <= path.len());
        PathSuffix { path, start }
    }

    /// The visible slice.
    pub fn as_slice(&self) -> &[Asn] {
        &self.path[self.start..]
    }

    /// Copies the suffix out into an owned vector.
    pub fn to_vec(&self) -> Vec<Asn> {
        self.as_slice().to_vec()
    }
}

impl std::ops::Deref for PathSuffix {
    type Target = [Asn];
    fn deref(&self) -> &[Asn] {
        self.as_slice()
    }
}

impl PartialEq for PathSuffix {
    fn eq(&self, other: &PathSuffix) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PathSuffix {}

impl PartialEq<Vec<Asn>> for PathSuffix {
    fn eq(&self, other: &Vec<Asn>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[Asn]> for PathSuffix {
    fn eq(&self, other: &[Asn]) -> bool {
        self.as_slice() == other
    }
}

impl From<Vec<Asn>> for PathSuffix {
    fn from(v: Vec<Asn>) -> PathSuffix {
        PathSuffix {
            path: v.into(),
            start: 0,
        }
    }
}

impl FromIterator<Asn> for PathSuffix {
    fn from_iter<I: IntoIterator<Item = Asn>>(iter: I) -> PathSuffix {
        iter.into_iter().collect::<Vec<Asn>>().into()
    }
}

/// What the measurement infrastructure can see of one AS's route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observation {
    /// The AS's route as an AS-path suffix (next hop first, origin last).
    pub suffix: PathSuffix,
    /// Seen in a collector feed.
    pub via_feed: bool,
    /// Seen on a monitor-probe path.
    pub via_probe: bool,
}

impl Observation {
    /// The next-hop neighbor the AS routes through.
    pub fn next_hop(&self) -> Option<Asn> {
        self.suffix.first().copied()
    }
}

/// Where the observation machinery sits.
#[derive(Debug, Clone, Default)]
pub struct ObservationSetup {
    /// ASes peering with route collectors.
    pub feed_vantages: Vec<Asn>,
    /// ASes hosting monitor probes (the 96-probe / PlanetLab set).
    pub probe_ases: Vec<Asn>,
}

/// Extracts everything the channels reveal about the current routing state
/// of `sim`: for every AS on an observed path, its route suffix.
pub fn observe_routes(sim: &PrefixSim<'_>, setup: &ObservationSetup) -> BTreeMap<Asn, Observation> {
    observe_routes_with_faults(sim, setup, &FaultPlane::quiet(), 0)
}

/// [`observe_routes`] through a fault plane: vantages whose collector feed
/// has a gap this `round` and probes that drop out are blind. A quiet plane
/// observes everything.
pub fn observe_routes_with_faults(
    sim: &PrefixSim<'_>,
    setup: &ObservationSetup,
    plane: &FaultPlane,
    round: u64,
) -> BTreeMap<Asn, Observation> {
    let world = sim.world();
    let mut out: BTreeMap<Asn, Observation> = BTreeMap::new();
    // All suffixes of one observed path share its single allocation.
    let mut record = |path: Arc<[Asn]>, feed: bool| {
        // path = [observer, ..., origin]; AS at position i routes via suffix
        // i+1.. (destination-based forwarding).
        for i in 0..path.len().saturating_sub(1) {
            let e = out.entry(path[i]).or_insert_with(|| Observation {
                suffix: PathSuffix::new(path.clone(), i + 1),
                via_feed: false,
                via_probe: false,
            });
            // Channels are consistent (same converged state), so suffixes
            // agree; only the channel flags accumulate.
            if feed {
                e.via_feed = true;
            } else {
                e.via_probe = true;
            }
        }
    };
    let observed_path = |asn: Asn| -> Option<Arc<[Asn]>> {
        let idx = world.graph.index_of(asn)?;
        let route = sim.best(idx)?;
        let mut path = vec![asn];
        if !route.is_local() {
            path.extend(route.path.sequence_asns());
        }
        Some(path.into())
    };
    // Collector feeds: the vantage's full best path.
    for &v in &setup.feed_vantages {
        if plane.fires(FaultDomain::FeedGap, v.value() as u64, round) {
            continue;
        }
        if let Some(path) = observed_path(v) {
            record(path, true);
        }
    }
    // Probe paths (control-plane walk of data-plane forwarding).
    for &p in &setup.probe_ases {
        if plane.fires(FaultDomain::ProbeDropout, p.value() as u64, round) {
            continue;
        }
        if let Some(path) = observed_path(p) {
            record(path, false);
        }
    }
    out
}

/// One revealed preference step of a target AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveredRoute {
    /// Round number (0 = unpoisoned).
    pub round: usize,
    /// Next hop the target used this round.
    pub next_hop: Asn,
    /// Full suffix the target used this round.
    pub suffix: Vec<Asn>,
}

/// A poisoning round whose announcement window was disturbed by the fault
/// plane: a mux flapped between rounds (timed schedule) or was sampled
/// into an outage, so the round ran with fewer muxes — or none. Recorded
/// rather than silently shortening the campaign, because §5's revealed
/// preference order is only trustworthy when every round actually
/// announced the shape it meant to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradedRound {
    /// Round number (same numbering as [`DiscoveredRoute::round`]).
    pub round: usize,
    /// Muxes that could carry this round's announcement.
    pub live_muxes: usize,
    /// Muxes the testbed has.
    pub total_muxes: usize,
    /// Timed fault events replayed in the window before this round's
    /// announcement (mux link flaps mid-campaign).
    pub timed_faults: usize,
}

/// The outcome of an alternate-route discovery for one target.
#[derive(Debug, Clone)]
pub struct AlternateDiscovery {
    pub target: Asn,
    /// Routes in revealed preference order (most preferred first).
    pub routes: Vec<DiscoveredRoute>,
    /// Total poisoned announcements used.
    pub announcements: usize,
    /// Rounds that ran degraded (mux lost to a flap or outage) or were
    /// lost outright (`live_muxes == 0`). Empty under a quiet plane.
    pub degraded: Vec<DegradedRound>,
}

/// The outcome of one magnet run.
#[derive(Debug, Clone)]
pub struct MagnetRun {
    /// The mux used as the magnet.
    pub magnet: Asn,
    /// Observed routes while only the magnet announced.
    pub before: BTreeMap<Asn, Observation>,
    /// Observed routes after the anycast.
    pub after: BTreeMap<Asn, Observation>,
    /// Ground truth: the decision step that actually selected each AS's
    /// post-anycast route (for validating the paper's inference).
    pub truth_steps: BTreeMap<Asn, DecisionStep>,
}

/// The testbed controller.
pub struct Peering<'w> {
    world: &'w World,
    /// Shared per-world simulation context: the experiment drivers spin up
    /// many per-prefix sims (one per discovery target / magnet run), all
    /// over the same session table.
    ctx: Arc<SimContext<'w>>,
    muxes: Vec<Asn>,
    prefixes: Vec<Prefix>,
}

impl<'w> Peering<'w> {
    /// Binds to the world's testbed AS; `None` if the world was generated
    /// without one.
    pub fn new(world: &'w World) -> Option<Peering<'w>> {
        let idx = world.graph.index_of(Asn::TESTBED)?;
        let muxes: Vec<Asn> = world
            .graph
            .providers(idx)
            .map(|p| world.graph.asn(p))
            .collect();
        let prefixes = world.graph.node(idx).prefixes.clone();
        Some(Peering {
            world,
            ctx: SimContext::shared(world),
            muxes,
            prefixes,
        })
    }

    /// A fresh, not-yet-announced simulation for `prefix` over the shared
    /// per-world context.
    pub fn sim(&self, prefix: Prefix) -> PrefixSim<'w> {
        PrefixSim::with_context(self.ctx.clone(), prefix)
    }

    /// The university muxes (provider ASNs).
    pub fn muxes(&self) -> &[Asn] {
        &self.muxes
    }

    /// The testbed's research prefixes.
    pub fn prefixes(&self) -> &[Prefix] {
        &self.prefixes
    }

    /// An anycast announcement (all muxes) with the given poison list.
    pub fn anycast(&self, prefix: Prefix, poison: &[Asn]) -> Announcement {
        Announcement {
            origin: Asn::TESTBED,
            prefix,
            via: Some(self.muxes.iter().copied().collect()),
            poison: poison.to_vec(),
        }
    }

    /// An announcement restricted to a subset of muxes.
    pub fn via(&self, prefix: Prefix, muxes: &[Asn], poison: &[Asn]) -> Announcement {
        let set: BTreeSet<Asn> = muxes.iter().copied().collect();
        assert!(
            set.iter().all(|m| self.muxes.contains(m)),
            "announcing via a non-mux"
        );
        Announcement {
            origin: Asn::TESTBED,
            prefix,
            via: Some(set),
            poison: poison.to_vec(),
        }
    }

    /// The muxes reachable this round under a fault plane: a mux sampled
    /// for an outage cannot carry the round's announcement.
    pub fn live_muxes(&self, plane: &FaultPlane, round: u64) -> Vec<Asn> {
        self.muxes
            .iter()
            .copied()
            .filter(|m| !plane.fires(FaultDomain::MuxOutage, m.value() as u64, round))
            .collect()
    }

    /// §3.2 alternate-route discovery: anycast, observe the target's next
    /// hop, poison it, repeat — until the target loses the route, vanishes
    /// from the channels, or `max_rounds` is hit.
    pub fn discover_alternates(
        &self,
        prefix: Prefix,
        target: Asn,
        setup: &ObservationSetup,
        max_rounds: usize,
    ) -> AlternateDiscovery {
        self.discover_alternates_with_faults(
            prefix,
            target,
            setup,
            max_rounds,
            &FaultPlane::quiet(),
        )
    }

    /// [`Peering::discover_alternates`] under a fault plane: the plane's
    /// timed schedule is replayed between rounds (a mux can flap mid-
    /// campaign), each round announces only via the muxes that are up —
    /// neither outage-sampled nor with their testbed link currently down —
    /// and observes through possibly-gapped channels. Disturbed rounds are
    /// recorded in [`AlternateDiscovery::degraded`]; a round with every mux
    /// down is lost (no announcement change) but still recorded, mirroring
    /// a real testbed outage window instead of silently shortening the
    /// campaign.
    pub fn discover_alternates_with_faults(
        &self,
        prefix: Prefix,
        target: Asn,
        setup: &ObservationSetup,
        max_rounds: usize,
        plane: &FaultPlane,
    ) -> AlternateDiscovery {
        let mut sim = self.sim(prefix);
        let mut poison: Vec<Asn> = Vec::new();
        let mut routes = Vec::new();
        let mut announcements = 0usize;
        let mut degraded = Vec::new();
        let mut schedule = plane.schedule().iter().peekable();
        for round in 0..max_rounds {
            let at = Timestamp(round as u64 * ROUND);
            // Replay timed faults landing before this round's announcement:
            // the §5 methodology's sensitivity to transient unreachability.
            let mut timed_faults = 0usize;
            while let Some(fault) = schedule.peek() {
                if fault.at > at {
                    break;
                }
                sim.apply_fault(fault);
                schedule.next();
                timed_faults += 1;
            }
            let live: Vec<Asn> = self
                .live_muxes(plane, round as u64)
                .into_iter()
                .filter(|&m| !sim.is_link_down(Asn::TESTBED, m))
                .collect();
            if timed_faults > 0 || live.len() < self.muxes.len() {
                degraded.push(DegradedRound {
                    round,
                    live_muxes: live.len(),
                    total_muxes: self.muxes.len(),
                    timed_faults,
                });
            }
            if live.is_empty() {
                // Total testbed outage: the round's announcement is lost
                // (recorded above).
                continue;
            }
            sim.announce(self.via(prefix, &live, &poison), at);
            announcements += 1;
            let obs = observe_routes_with_faults(&sim, setup, plane, round as u64);
            let Some(o) = obs.get(&target) else { break };
            let Some(next) = o.next_hop() else { break };
            routes.push(DiscoveredRoute {
                round,
                next_hop: next,
                suffix: o.suffix.to_vec(),
            });
            if poison.contains(&next) || next == Asn::TESTBED {
                // Poisoning this neighbor did not dislodge it (loop
                // prevention disabled / AS-set filtering upstream), or we
                // reached a direct mux adjacency: nothing more to reveal.
                break;
            }
            poison.push(next);
        }
        AlternateDiscovery {
            target,
            routes,
            announcements,
            degraded,
        }
    }

    /// §3.2 magnet experiment for one magnet mux.
    pub fn run_magnet(
        &self,
        prefix: Prefix,
        magnet: Asn,
        setup: &ObservationSetup,
        start: Timestamp,
    ) -> MagnetRun {
        assert!(self.muxes.contains(&magnet), "magnet must be a mux");
        let mut sim = self.sim(prefix);
        sim.announce(self.via(prefix, &[magnet], &[]), start);
        let before = observe_routes(&sim, setup);
        sim.announce(
            self.anycast(prefix, &[]),
            Timestamp(start.secs() + MAGNET_WAIT),
        );
        let after = observe_routes(&sim, setup);
        // Ground-truth decision steps after the anycast.
        let mut truth_steps = BTreeMap::new();
        for x in 0..self.world.graph.len() {
            let cands = sim.candidates(x);
            if let Some((_, step)) = decision::select(&cands) {
                truth_steps.insert(self.world.graph.asn(x), step);
            }
        }
        MagnetRun {
            magnet,
            before,
            after,
            truth_steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ir_topology::graph::AsRole;
    use ir_topology::GeneratorConfig;
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| GeneratorConfig::tiny().build(31))
    }

    fn setup(w: &World) -> ObservationSetup {
        // Vantages: a few core transit ASes; probes: a spread of stubs.
        let mut feed_vantages: Vec<Asn> = w
            .graph
            .nodes()
            .iter()
            .filter(|n| n.role == AsRole::Transit && n.asn.value() < 1000)
            .map(|n| n.asn)
            .take(6)
            .collect();
        feed_vantages.sort_unstable();
        let probe_ases: Vec<Asn> = w
            .graph
            .nodes()
            .iter()
            .filter(|n| n.asn.value() >= 20_000)
            .map(|n| n.asn)
            .step_by(3)
            .take(20)
            .collect();
        ObservationSetup {
            feed_vantages,
            probe_ases,
        }
    }

    #[test]
    fn testbed_binds_with_muxes() {
        let w = world();
        let p = Peering::new(w).expect("testbed exists");
        assert!(!p.muxes().is_empty() && p.muxes().len() <= 7);
        assert!(!p.prefixes().is_empty());
    }

    #[test]
    fn observations_expose_on_path_decisions() {
        let w = world();
        let p = Peering::new(w).unwrap();
        let s = setup(w);
        let mut sim = PrefixSim::new(w, p.prefixes()[0]);
        sim.announce(p.anycast(p.prefixes()[0], &[]), Timestamp::ZERO);
        let obs = observe_routes(&sim, &s);
        assert!(
            obs.len() > s.feed_vantages.len(),
            "on-path ASes observed too"
        );
        // Every observed suffix matches the AS's actual best route.
        for (asn, o) in &obs {
            let idx = w.graph.index_of(*asn).unwrap();
            let best = sim.best(idx).expect("observed AS has a route");
            assert_eq!(
                o.suffix,
                best.path.sequence_asns(),
                "suffix matches at {asn}"
            );
        }
        // Channel flags are set somewhere.
        assert!(obs.values().any(|o| o.via_feed));
        assert!(obs.values().any(|o| o.via_probe));
    }

    #[test]
    fn discovery_reveals_distinct_next_hops_in_order() {
        let w = world();
        let p = Peering::new(w).unwrap();
        let s = setup(w);
        // Target: some multihomed stub observed on paths.
        let mut sim = PrefixSim::new(w, p.prefixes()[0]);
        sim.announce(p.anycast(p.prefixes()[0], &[]), Timestamp::ZERO);
        let obs = observe_routes(&sim, &s);
        let target = *obs
            .keys()
            .find(|a| {
                let idx = w.graph.index_of(**a).unwrap();
                w.graph.links(idx).len() >= 3 && **a != Asn::TESTBED
            })
            .expect("an observed multihomed AS");
        let d = p.discover_alternates(p.prefixes()[0], target, &s, 8);
        assert!(!d.routes.is_empty());
        // Next hops are distinct until a terminal repeat.
        let mut hops: Vec<Asn> = d.routes.iter().map(|r| r.next_hop).collect();
        let last_repeats = hops.len() >= 2 && hops[hops.len() - 1] == hops[hops.len() - 2];
        if last_repeats {
            hops.pop();
        }
        let mut dedup = hops.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hops.len(), "distinct next hops {hops:?}");
        assert!(d.announcements >= d.routes.len());
    }

    #[test]
    fn mux_flap_between_rounds_is_recorded_as_degraded() {
        use ir_fault::{FaultConfig, FaultEvent};
        let w = world();
        let p = Peering::new(w).unwrap();
        let s = setup(w);
        let prefix = p.prefixes()[0];
        let mut sim = PrefixSim::new(w, prefix);
        sim.announce(p.anycast(prefix, &[]), Timestamp::ZERO);
        let obs = observe_routes(&sim, &s);
        let target = *obs
            .keys()
            .find(|a| {
                let idx = w.graph.index_of(**a).unwrap();
                w.graph.links(idx).len() >= 3 && **a != Asn::TESTBED
            })
            .expect("an observed multihomed AS");

        // A quiet plane records no degraded rounds.
        let quiet = p.discover_alternates(prefix, target, &s, 6);
        assert!(quiet.degraded.is_empty(), "quiet: {:?}", quiet.degraded);
        assert!(quiet.routes.len() >= 2, "target reveals alternates");

        // One mux flaps between rounds: down in the 0→1 window, back up in
        // the 1→2 window. Round 1 must run short a mux and round 2 must
        // record the replayed LinkUp — neither silently dropped.
        let flapped = p.muxes()[0];
        let mut plane = FaultPlane::new(FaultConfig::quiet(), 7);
        plane.schedule_event(
            Timestamp(ROUND / 2),
            FaultEvent::LinkDown {
                a: Asn::TESTBED,
                b: flapped,
            },
        );
        plane.schedule_event(
            Timestamp(ROUND + ROUND / 2),
            FaultEvent::LinkUp {
                a: Asn::TESTBED,
                b: flapped,
            },
        );
        let d = p.discover_alternates_with_faults(prefix, target, &s, 6, &plane);
        assert!(
            !d.degraded.iter().any(|r| r.round == 0),
            "round 0 predates the flap"
        );
        let r1 = d
            .degraded
            .iter()
            .find(|r| r.round == 1)
            .expect("flapped round marked degraded");
        assert_eq!(r1.timed_faults, 1, "the LinkDown replayed before round 1");
        assert_eq!(r1.live_muxes, r1.total_muxes - 1, "flapped mux missing");
        let r2 = d
            .degraded
            .iter()
            .find(|r| r.round == 2)
            .expect("recovery round records the replayed LinkUp");
        assert_eq!(r2.timed_faults, 1);
        assert_eq!(r2.live_muxes, r2.total_muxes, "mux back after the flap");
        // The campaign itself still announced every round it reached.
        assert!(d.announcements >= 3, "rounds 0..=2 announced: {d:?}");

        // Every mux down across the 0→1 window: round 1 is lost outright
        // (no live mux, no announcement) but recorded — the campaign
        // resumes once the links return instead of silently shortening.
        let mut outage = FaultPlane::new(FaultConfig::quiet(), 7);
        for &m in p.muxes() {
            outage.schedule_event(
                Timestamp(ROUND / 2),
                FaultEvent::LinkDown {
                    a: Asn::TESTBED,
                    b: m,
                },
            );
            outage.schedule_event(
                Timestamp(ROUND + ROUND / 2),
                FaultEvent::LinkUp {
                    a: Asn::TESTBED,
                    b: m,
                },
            );
        }
        let d2 = p.discover_alternates_with_faults(prefix, target, &s, 6, &outage);
        let lost = d2
            .degraded
            .iter()
            .find(|r| r.round == 1)
            .expect("outage round recorded");
        assert_eq!(lost.live_muxes, 0, "total outage: no mux could announce");
        assert!(
            d2.routes.iter().any(|r| r.round >= 2),
            "campaign resumed after the outage window: {:?}",
            d2.routes
        );
    }

    #[test]
    fn magnet_keeps_or_switches_routes() {
        let w = world();
        let p = Peering::new(w).unwrap();
        let s = setup(w);
        let magnet = p.muxes()[0];
        let run = p.run_magnet(p.prefixes()[0], magnet, &s, Timestamp::ZERO);
        assert!(!run.before.is_empty() && !run.after.is_empty());
        // Before the anycast every observed route goes through the magnet.
        for o in run.before.values() {
            assert!(
                o.suffix.contains(&magnet) || o.suffix == vec![Asn::TESTBED],
                "magnet-only epoch routes via the magnet: {:?}",
                o.suffix
            );
        }
        // After the anycast, at least one AS switched away from the magnet
        // toward some other mux (which muxes attract routes depends on the
        // generated topology).
        if p.muxes().len() > 1 {
            let switched = p.muxes().iter().any(|&om| {
                om != magnet
                    && run
                        .after
                        .values()
                        .any(|o| o.suffix.contains(&om) && !o.suffix.contains(&magnet))
            });
            assert!(switched, "someone switched to another mux");
        }
        // Ground-truth steps recorded for routed ASes.
        assert!(!run.truth_steps.is_empty());
    }
}
