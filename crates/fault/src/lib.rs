#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
//! Deterministic, seeded fault injection — the chaos layer.
//!
//! The paper's pipeline ran on a hostile substrate: RIPE Atlas probes
//! disconnect mid-campaign, PEERING muxes go quiet or filter poisoned
//! announcements, BGP sessions flap while measurements are in flight, and
//! collector feeds have gaps. This crate turns those failure modes into
//! first-class, *reproducible* scenarios: a [`FaultPlane`] owns per-subsystem
//! rates ([`FaultConfig`]) plus an explicit schedule of timed events, and
//! every sampling decision is a pure hash of `(seed, domain, entity, trial)`
//! — **order-independent**, so the same seed yields the same faults no matter
//! which subsystem asks first or whether the consumers run on one thread or
//! sixteen.
//!
//! Two invariants the differential suite leans on:
//!
//! * **Zero is a strict no-op.** A rate of `0.0` never fires, never touches
//!   a counter, and costs one branch. Pipelines run with
//!   [`FaultConfig::quiet`] are bit-identical to pipelines that never heard
//!   of this crate.
//! * **Everything fired is counted.** [`FaultPlane::stats`] snapshots atomic
//!   per-domain counters, so reports can account for every injected fault.

use ir_types::{Asn, Timestamp};
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-subsystem fault rates, all probabilities in `[0, 1]`.
///
/// The default is **all zeros** — the quiet plane. Construct nonzero configs
/// explicitly (or via [`FaultConfig::chaos`]) so that fault injection is
/// always an opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Probability a given peering/transit link flaps (down, then back up)
    /// during a control-plane window.
    pub link_flap: f64,
    /// Probability a given BGP session is reset (state cleared, immediately
    /// re-established) during a control-plane window.
    pub session_reset: f64,
    /// Fraction of ASes that filter announcements carrying an `AS-SET`
    /// (the poisoned-path sandwich, §5 "some ASes drop poisoned paths").
    pub poison_filter: f64,
    /// Per-attempt probability a probe is disconnected and the measurement
    /// times out (transient; the attempt can be retried).
    pub probe_dropout: f64,
    /// Per-campaign probability a probe dies partway through and never
    /// comes back (its remaining measurements must be abandoned).
    pub probe_death: f64,
    /// Per-round probability a PEERING mux is down for that round.
    pub mux_outage: f64,
    /// Per-query probability DNS resolution fails transiently.
    pub dns_failure: f64,
    /// Per-interval probability a collector misses its dump (feed gap).
    pub feed_gap: f64,
}

impl FaultConfig {
    /// The all-zero config: injection disabled everywhere.
    pub fn quiet() -> FaultConfig {
        FaultConfig::default()
    }

    /// True iff every rate is exactly zero (the plane cannot fire).
    pub fn is_quiet(&self) -> bool {
        self.link_flap == 0.0
            && self.session_reset == 0.0
            && self.poison_filter == 0.0
            && self.probe_dropout == 0.0
            && self.probe_death == 0.0
            && self.mux_outage == 0.0
            && self.dns_failure == 0.0
            && self.feed_gap == 0.0
    }

    /// A proportional all-subsystem preset: `chaos(1.0)` is a plausibly
    /// hostile Internet, `chaos(0.2)` a mildly bad week.
    pub fn chaos(intensity: f64) -> FaultConfig {
        let i = intensity.clamp(0.0, 1.0);
        FaultConfig {
            link_flap: 0.04 * i,
            session_reset: 0.03 * i,
            poison_filter: 0.10 * i,
            probe_dropout: 0.05 * i,
            probe_death: 0.02 * i,
            mux_outage: 0.08 * i,
            dns_failure: 0.04 * i,
            feed_gap: 0.06 * i,
        }
    }
}

/// The fault subsystems a plane samples for. Each domain has a stable tag
/// mixed into the hash, so adding a domain never perturbs another's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDomain {
    LinkFlap,
    SessionReset,
    PoisonFilter,
    ProbeDropout,
    ProbeDeath,
    MuxOutage,
    DnsFailure,
    FeedGap,
}

impl FaultDomain {
    /// Every domain, in counter order.
    pub const ALL: [FaultDomain; 8] = [
        FaultDomain::LinkFlap,
        FaultDomain::SessionReset,
        FaultDomain::PoisonFilter,
        FaultDomain::ProbeDropout,
        FaultDomain::ProbeDeath,
        FaultDomain::MuxOutage,
        FaultDomain::DnsFailure,
        FaultDomain::FeedGap,
    ];

    fn tag(self) -> u64 {
        match self {
            FaultDomain::LinkFlap => 0x11a7_f1a9,
            FaultDomain::SessionReset => 0x5e55_0000,
            FaultDomain::PoisonFilter => 0x9015_0000,
            FaultDomain::ProbeDropout => 0x9806_d809,
            FaultDomain::ProbeDeath => 0x9806_dead,
            FaultDomain::MuxOutage => 0x3503_0a7e,
            FaultDomain::DnsFailure => 0x0d45_fa11,
            FaultDomain::FeedGap => 0x0fee_d0a9,
        }
    }

    fn idx(self) -> usize {
        match self {
            FaultDomain::LinkFlap => 0,
            FaultDomain::SessionReset => 1,
            FaultDomain::PoisonFilter => 2,
            FaultDomain::ProbeDropout => 3,
            FaultDomain::ProbeDeath => 4,
            FaultDomain::MuxOutage => 5,
            FaultDomain::DnsFailure => 6,
            FaultDomain::FeedGap => 7,
        }
    }

    /// Human label used by `diag` and reports.
    pub fn label(self) -> &'static str {
        match self {
            FaultDomain::LinkFlap => "link flaps",
            FaultDomain::SessionReset => "session resets",
            FaultDomain::PoisonFilter => "poison filters",
            FaultDomain::ProbeDropout => "probe dropouts",
            FaultDomain::ProbeDeath => "probe deaths",
            FaultDomain::MuxOutage => "mux outages",
            FaultDomain::DnsFailure => "dns failures",
            FaultDomain::FeedGap => "feed gaps",
        }
    }
}

/// A scheduled control-plane fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Both directions of the session between the two ASes go down.
    LinkDown { a: Asn, b: Asn },
    /// The session comes back up (state re-learned from scratch).
    LinkUp { a: Asn, b: Asn },
    /// The session is reset: state cleared, immediately re-established.
    SessionReset { a: Asn, b: Asn },
}

/// A fault event pinned to a simulation timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedFault {
    pub at: Timestamp,
    pub event: FaultEvent,
}

/// Point-in-time snapshot of the plane's per-domain fire counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultCounts {
    pub counts: [u64; 8],
}

impl FaultCounts {
    /// Fires recorded for one domain.
    pub fn of(&self, d: FaultDomain) -> u64 {
        self.counts[d.idx()]
    }

    /// Total fires across all domains.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl std::fmt::Display for FaultCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for d in FaultDomain::ALL {
            let n = self.of(d);
            if n > 0 {
                if !first {
                    write!(f, ", ")?;
                }
                write!(f, "{} {}", n, d.label())?;
                first = false;
            }
        }
        if first {
            write!(f, "none")?;
        }
        Ok(())
    }
}

/// The seeded fault plane threaded through the stack.
///
/// Sampling is stateless: `fires(domain, entity, trial)` hashes the plane
/// seed with the domain tag, an entity key (probe ASN, link endpoints, …)
/// and a trial index, and compares against the configured rate. Counters
/// are atomics so a shared `&FaultPlane` works across rayon workers.
#[derive(Debug)]
pub struct FaultPlane {
    seed: u64,
    cfg: FaultConfig,
    schedule: Vec<TimedFault>,
    fired: [AtomicU64; 8],
}

impl FaultPlane {
    /// A plane with the given rates and no timed schedule.
    pub fn new(cfg: FaultConfig, seed: u64) -> FaultPlane {
        FaultPlane {
            seed,
            cfg,
            schedule: Vec::new(),
            fired: Default::default(),
        }
    }

    /// The quiet plane: never fires, schedules nothing.
    pub fn quiet() -> FaultPlane {
        FaultPlane::new(FaultConfig::quiet(), 0)
    }

    /// The plane's rate configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The plane's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True iff all rates are zero *and* no events are scheduled.
    pub fn is_quiet(&self) -> bool {
        self.cfg.is_quiet() && self.schedule.is_empty()
    }

    /// Appends a timed event, keeping the schedule sorted by time (stable
    /// for equal timestamps, so insertion order breaks ties).
    pub fn schedule_event(&mut self, at: Timestamp, event: FaultEvent) {
        let pos = self.schedule.partition_point(|t| t.at <= at);
        self.schedule.insert(pos, TimedFault { at, event });
    }

    /// The full timed schedule, sorted by time.
    pub fn schedule(&self) -> &[TimedFault] {
        &self.schedule
    }

    /// Derives a link flap/reset schedule for the given links over the
    /// window `[0, window)`. Each link is sampled independently (hash of
    /// its endpoints), flap downtime spans the middle of the window, and
    /// resets land at a link-specific offset. Purely additive: with both
    /// rates zero, no events are produced.
    pub fn synthesize_link_schedule(&mut self, links: &[(Asn, Asn)], window: Timestamp) {
        for &(a, b) in links {
            let key = key2(a.value() as u64, b.value() as u64);
            if self.samples(FaultDomain::LinkFlap, key, 0, self.cfg.link_flap) {
                self.record(FaultDomain::LinkFlap, 1);
                // Down for the middle third of the window, offset per link.
                let span = window.0.max(3);
                let down = span / 3 + (self.roll_u64(FaultDomain::LinkFlap, key, 1) % (span / 3));
                let up = down + span / 4 + 1;
                self.schedule_event(Timestamp(down), FaultEvent::LinkDown { a, b });
                self.schedule_event(Timestamp(up.min(span - 1)), FaultEvent::LinkUp { a, b });
            }
            if self.samples(FaultDomain::SessionReset, key, 0, self.cfg.session_reset) {
                self.record(FaultDomain::SessionReset, 1);
                let span = window.0.max(2);
                let at = 1 + self.roll_u64(FaultDomain::SessionReset, key, 1) % (span - 1);
                self.schedule_event(Timestamp(at), FaultEvent::SessionReset { a, b });
            }
        }
    }

    /// Does the fault of `domain` fire for `(entity, trial)`? Counts a fire.
    /// With the domain's rate at zero this is a single branch and never
    /// counts anything.
    pub fn fires(&self, domain: FaultDomain, entity: u64, trial: u64) -> bool {
        let rate = match domain {
            FaultDomain::LinkFlap => self.cfg.link_flap,
            FaultDomain::SessionReset => self.cfg.session_reset,
            FaultDomain::PoisonFilter => self.cfg.poison_filter,
            FaultDomain::ProbeDropout => self.cfg.probe_dropout,
            FaultDomain::ProbeDeath => self.cfg.probe_death,
            FaultDomain::MuxOutage => self.cfg.mux_outage,
            FaultDomain::DnsFailure => self.cfg.dns_failure,
            FaultDomain::FeedGap => self.cfg.feed_gap,
        };
        if self.samples(domain, entity, trial, rate) {
            self.fired[domain.idx()].fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Like [`FaultPlane::fires`] but without touching the counters — for
    /// membership-style queries ("does AS x filter AS-sets?") that are asked
    /// repeatedly about the same entity.
    pub fn selects(&self, domain: FaultDomain, entity: u64) -> bool {
        let rate = match domain {
            FaultDomain::PoisonFilter => self.cfg.poison_filter,
            FaultDomain::ProbeDeath => self.cfg.probe_death,
            FaultDomain::MuxOutage => self.cfg.mux_outage,
            FaultDomain::FeedGap => self.cfg.feed_gap,
            FaultDomain::LinkFlap => self.cfg.link_flap,
            FaultDomain::SessionReset => self.cfg.session_reset,
            FaultDomain::ProbeDropout => self.cfg.probe_dropout,
            FaultDomain::DnsFailure => self.cfg.dns_failure,
        };
        self.samples(domain, entity, 0, rate)
    }

    /// Records `n` externally-observed fires for a domain (e.g. the engine
    /// counting sessions a scheduled LinkDown actually tore).
    pub fn record(&self, domain: FaultDomain, n: u64) {
        if n > 0 {
            self.fired[domain.idx()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Snapshot of the per-domain fire counters.
    pub fn stats(&self) -> FaultCounts {
        let mut counts = [0u64; 8];
        for (i, c) in self.fired.iter().enumerate() {
            counts[i] = c.load(Ordering::Relaxed);
        }
        FaultCounts { counts }
    }

    fn samples(&self, domain: FaultDomain, entity: u64, trial: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let x = self.roll_u64(domain, entity, trial);
        // Map the top 53 bits to [0, 1) — full double precision.
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        u < rate
    }

    fn roll_u64(&self, domain: FaultDomain, entity: u64, trial: u64) -> u64 {
        let mut x = self.seed ^ domain.tag().wrapping_mul(0x9e37_79b9_7f4a_7c15);
        x = splitmix(x ^ entity.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        splitmix(x ^ trial.wrapping_mul(0x94d0_49bb_1331_11eb))
    }
}

/// Canonical symmetric key for a pair of entities (link endpoints).
pub fn key2(a: u64, b: u64) -> u64 {
    let (lo, hi) = (a.min(b), a.max(b));
    splitmix(lo.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ hi)
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Retry/backoff policy for the campaign scheduler.
///
/// Backoff is capped exponential with deterministic jitter: attempt `k`
/// (0-based) waits `min(base · 2^k, cap) + jitter(key, k)` seconds, where the
/// jitter is a pure hash — two schedulers with the same policy and keys
/// produce the same timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Seconds before an in-flight measurement is declared timed out.
    pub timeout: u64,
    /// Total attempts (first try + retries) before abandoning.
    pub max_attempts: u32,
    /// Base backoff after the first failure, seconds.
    pub base_backoff: u64,
    /// Backoff cap, seconds.
    pub max_backoff: u64,
    /// Maximum extra jitter, seconds (0 = no jitter).
    pub jitter: u64,
    /// Consecutive failures after which a probe is quarantined as dead.
    pub quarantine_after: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            timeout: 30,
            max_attempts: 4,
            base_backoff: 15,
            max_backoff: 240,
            jitter: 7,
            quarantine_after: 6,
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff before retry number `attempt` (1-based retry
    /// counter: attempt 0 is the initial try and has no backoff).
    pub fn backoff(&self, attempt: u32, key: u64) -> u64 {
        if attempt == 0 {
            return 0;
        }
        let exp = self
            .base_backoff
            .saturating_mul(1u64 << (attempt - 1).min(16))
            .min(self.max_backoff);
        let jitter = if self.jitter == 0 {
            0
        } else {
            splitmix(key ^ u64::from(attempt).wrapping_mul(0xfeed_5eed)) % (self.jitter + 1)
        };
        exp + jitter
    }
}

/// Millisecond clock the serving plane reads deadlines and breaker timers
/// from. Production uses [`ServiceClock::wall`]; deterministic tests use
/// [`ServiceClock::simulated`], advanced explicitly — the chaos soak's
/// reproducible-counter guarantee depends on no code path consulting the
/// wall clock behind the test's back.
#[derive(Debug, Clone)]
pub enum ServiceClock {
    /// Monotonic wall time, measured from construction.
    Wall(std::time::Instant),
    /// Test-driven counter; clones share the counter.
    Simulated(std::sync::Arc<AtomicU64>),
}

impl ServiceClock {
    /// A wall clock starting at 0 now.
    pub fn wall() -> ServiceClock {
        ServiceClock::Wall(std::time::Instant::now())
    }

    /// A simulated clock starting at 0, advanced only by
    /// [`ServiceClock::advance_ms`].
    pub fn simulated() -> ServiceClock {
        ServiceClock::Simulated(std::sync::Arc::new(AtomicU64::new(0)))
    }

    /// Milliseconds elapsed since this clock's origin.
    pub fn now_ms(&self) -> u64 {
        match self {
            ServiceClock::Wall(origin) => origin.elapsed().as_millis() as u64,
            ServiceClock::Simulated(ms) => ms.load(Ordering::Relaxed),
        }
    }

    /// Advances a simulated clock; a no-op on a wall clock (time advances
    /// itself).
    pub fn advance_ms(&self, ms: u64) {
        if let ServiceClock::Simulated(counter) = self {
            counter.fetch_add(ms, Ordering::Relaxed);
        }
    }
}

/// Circuit-breaker state for one protected key (a prefix, a probe, a
/// neighbor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests pass through.
    Closed,
    /// Quarantined until the stated clock reading: requests are refused.
    Open {
        /// [`ServiceClock::now_ms`] reading at which the quarantine lapses.
        until_ms: u64,
    },
    /// Quarantine lapsed; one probe request is in flight. Success closes
    /// the breaker, failure re-opens it with a longer backoff.
    HalfOpen,
}

/// A deterministic circuit breaker over [`RetryPolicy`]'s quarantine
/// machinery: `quarantine_after` consecutive failures open it, and each
/// (re-)opening quarantines for `backoff(trips, key)` seconds — the same
/// deterministic exponential-plus-jitter schedule retries use, so two
/// breakers with the same policy, key, and failure history quarantine
/// identically.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: RetryPolicy,
    /// Jitter key — also what makes distinct keys desynchronize.
    key: u64,
    state: BreakerState,
    consecutive_failures: u32,
    /// Times this breaker has opened (drives the backoff exponent).
    trips: u32,
}

impl CircuitBreaker {
    /// A closed breaker for `key` under `policy`.
    pub fn new(policy: RetryPolicy, key: u64) -> CircuitBreaker {
        CircuitBreaker {
            policy,
            key,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
        }
    }

    /// Current state (after lapse checks as of the last `allows` call).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a request may proceed at clock reading `now_ms`. An open
    /// breaker whose quarantine has lapsed transitions to half-open and
    /// admits exactly this request as the probe.
    pub fn allows(&mut self, now_ms: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open { until_ms } if now_ms >= until_ms => {
                self.state = BreakerState::HalfOpen;
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    /// Records a successful request: failures reset, breaker closes.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Records a failed request at clock reading `now_ms`. A half-open
    /// probe failure re-opens immediately; `quarantine_after` consecutive
    /// failures open a closed breaker.
    pub fn record_failure(&mut self, now_ms: u64) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let should_open = matches!(self.state, BreakerState::HalfOpen)
            || self.consecutive_failures >= self.policy.quarantine_after;
        if should_open {
            self.trips = self.trips.saturating_add(1);
            let hold_s = self.policy.backoff(self.trips, self.key).max(1);
            self.state = BreakerState::Open {
                until_ms: now_ms.saturating_add(hold_s.saturating_mul(1000)),
            };
            self.consecutive_failures = 0;
        }
    }

    /// Times this breaker has opened.
    pub fn trips(&self) -> u32 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plane_never_fires() {
        let p = FaultPlane::quiet();
        for d in FaultDomain::ALL {
            for e in 0..50u64 {
                assert!(!p.fires(d, e, 0));
                assert!(!p.selects(d, e));
            }
        }
        assert_eq!(p.stats().total(), 0);
        assert!(p.is_quiet());
    }

    #[test]
    fn sampling_is_order_independent() {
        let cfg = FaultConfig::chaos(1.0);
        let a = FaultPlane::new(cfg, 42);
        let b = FaultPlane::new(cfg, 42);
        // Query b in reverse order: identical outcomes per (domain, entity).
        let mut fwd = Vec::new();
        for d in FaultDomain::ALL {
            for e in 0..100u64 {
                fwd.push(a.fires(d, e, 3));
            }
        }
        let mut rev = Vec::new();
        for d in FaultDomain::ALL.iter().rev() {
            for e in (0..100u64).rev() {
                rev.push(b.fires(*d, e, 3));
            }
        }
        rev.reverse();
        assert_eq!(fwd, rev);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn rates_are_respected_roughly() {
        let p = FaultPlane::new(
            FaultConfig {
                probe_dropout: 0.25,
                ..FaultConfig::quiet()
            },
            7,
        );
        let n = 20_000u64;
        let hits = (0..n)
            .filter(|&e| p.fires(FaultDomain::ProbeDropout, e, 0))
            .count() as f64;
        let frac = hits / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "observed {frac}");
        assert_eq!(p.stats().of(FaultDomain::ProbeDropout), hits as u64);
    }

    #[test]
    fn schedule_stays_sorted() {
        let mut p = FaultPlane::quiet();
        p.schedule_event(
            Timestamp(50),
            FaultEvent::LinkDown {
                a: Asn(1),
                b: Asn(2),
            },
        );
        p.schedule_event(
            Timestamp(10),
            FaultEvent::LinkDown {
                a: Asn(3),
                b: Asn(4),
            },
        );
        p.schedule_event(
            Timestamp(50),
            FaultEvent::LinkUp {
                a: Asn(1),
                b: Asn(2),
            },
        );
        let ats: Vec<u64> = p.schedule().iter().map(|t| t.at.0).collect();
        assert_eq!(ats, vec![10, 50, 50]);
        // Equal timestamps keep insertion order.
        assert_eq!(
            p.schedule()[1].event,
            FaultEvent::LinkDown {
                a: Asn(1),
                b: Asn(2)
            },
            "stable tie-break"
        );
        assert!(!p.is_quiet(), "a scheduled event disqualifies quiescence");
    }

    #[test]
    fn synthesized_schedule_is_deterministic_and_zero_safe() {
        let links: Vec<(Asn, Asn)> = (0..40).map(|i| (Asn(i), Asn(i + 100))).collect();
        let mut quiet = FaultPlane::quiet();
        quiet.synthesize_link_schedule(&links, Timestamp(3600));
        assert!(quiet.schedule().is_empty());

        let cfg = FaultConfig {
            link_flap: 0.3,
            session_reset: 0.2,
            ..FaultConfig::quiet()
        };
        let mut a = FaultPlane::new(cfg, 99);
        let mut b = FaultPlane::new(cfg, 99);
        a.synthesize_link_schedule(&links, Timestamp(3600));
        b.synthesize_link_schedule(&links, Timestamp(3600));
        assert_eq!(a.schedule(), b.schedule());
        assert!(!a.schedule().is_empty(), "rates this high produce events");
        // Every LinkDown has a matching LinkUp after it.
        for t in a.schedule() {
            if let FaultEvent::LinkDown { a: x, b: y } = t.event {
                assert!(a
                    .schedule()
                    .iter()
                    .any(|u| u.at >= t.at && u.event == FaultEvent::LinkUp { a: x, b: y }));
            }
        }
    }

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0, 1), 0);
        let b1 = p.backoff(1, 1);
        let b2 = p.backoff(2, 1);
        let b5 = p.backoff(5, 1);
        assert!(b1 >= p.base_backoff && b1 <= p.base_backoff + p.jitter);
        assert!(b2 >= 2 * p.base_backoff);
        assert!(b5 <= p.max_backoff + p.jitter, "cap holds");
        assert_eq!(p.backoff(3, 9), p.backoff(3, 9), "jitter is a pure hash");
    }

    #[test]
    fn simulated_clock_is_shared_and_explicit() {
        let c = ServiceClock::simulated();
        let c2 = c.clone();
        assert_eq!(c.now_ms(), 0);
        c.advance_ms(250);
        assert_eq!(c2.now_ms(), 250, "clones share the counter");
        // Wall clocks ignore advance and are monotone.
        let w = ServiceClock::wall();
        w.advance_ms(1_000_000);
        assert!(w.now_ms() < 1_000_000);
    }

    #[test]
    fn breaker_opens_after_quarantine_threshold_and_recovers() {
        let policy = RetryPolicy {
            quarantine_after: 3,
            jitter: 0,
            ..RetryPolicy::default()
        };
        let mut b = CircuitBreaker::new(policy, 7);
        let clock = ServiceClock::simulated();
        // Two failures: still closed.
        for _ in 0..2 {
            assert!(b.allows(clock.now_ms()));
            b.record_failure(clock.now_ms());
        }
        assert_eq!(b.state(), BreakerState::Closed);
        // Third consecutive failure trips it.
        b.record_failure(clock.now_ms());
        let BreakerState::Open { until_ms } = b.state() else {
            panic!("breaker must open after quarantine_after failures");
        };
        assert_eq!(
            until_ms,
            policy.base_backoff * 1000,
            "backoff(1), no jitter"
        );
        assert!(!b.allows(clock.now_ms()), "open breaker refuses requests");
        // Quarantine lapses: one half-open probe is admitted.
        clock.advance_ms(until_ms);
        assert!(b.allows(clock.now_ms()));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe failure re-opens immediately, with a longer hold.
        b.record_failure(clock.now_ms());
        let BreakerState::Open { until_ms: again } = b.state() else {
            panic!("failed probe must re-open the breaker");
        };
        assert!(again - clock.now_ms() > until_ms, "backoff grows per trip");
        assert_eq!(b.trips(), 2);
        // Eventually a successful probe closes it for good.
        clock.advance_ms(again);
        assert!(b.allows(clock.now_ms()));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(clock.now_ms()));
    }

    #[test]
    fn breaker_schedule_is_deterministic_per_key() {
        let policy = RetryPolicy::default();
        let run = |key: u64| {
            let mut b = CircuitBreaker::new(policy, key);
            let mut states = Vec::new();
            for i in 0..24u64 {
                let now = i * 500;
                let allowed = b.allows(now);
                if allowed {
                    b.record_failure(now);
                }
                states.push((allowed, b.state()));
            }
            states
        };
        assert_eq!(run(11), run(11), "same key ⇒ same quarantine timeline");
    }
}
