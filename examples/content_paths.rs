//! Content paths: run the full passive campaign (§3.1) on a small world
//! and print the Figure 1 refinement pipeline plus the violation skew.
//!
//! ```sh
//! cargo run --release --example content_paths
//! ```

use ir_core::classify::{Category, Classifier, ClassifyConfig};
use ir_core::skew::{violations, SkewBy, SkewCurve};
use ir_experiments::scenario::{Scenario, ScenarioConfig};

fn main() {
    let scenario = Scenario::build(ScenarioConfig::tiny(99));
    println!(
        "campaign: {} traceroutes from {} probes, {} usable paths, {} decisions for {} ASes",
        scenario.campaign.traceroutes.len(),
        scenario.probes.len(),
        scenario.measured.len(),
        scenario.decisions.len(),
        scenario.observed_ases()
    );
    println!(
        "destinations: {} ASes for {} content providers (off-net caches!)\n",
        scenario.campaign.destination_ases(),
        scenario.world.content.providers().len()
    );

    // Figure 1: the refinement pipeline.
    let fig1 = ir_experiments::exp_fig1::run(&scenario);
    println!("{}", fig1.render());

    // Who do the violations point at? (Figure 2 / §5.)
    let classifier = Classifier::new(&scenario.inferred, ClassifyConfig::default());
    let vs = violations(&classifier, &scenario.decisions);
    let by_dest = SkewCurve::build(&vs, SkewBy::Destination, None);
    println!("violations: {} total; top destinations:", vs.len());
    for (asn, n) in by_dest.ranked.iter().take(5) {
        let provider = scenario
            .world
            .content
            .providers()
            .iter()
            .find(|p| p.origin_asns.contains(asn))
            .map(|p| format!(" ({})", p.name))
            .unwrap_or_default();
        println!(
            "  {asn}{provider}: {n} ({:.1}%)",
            100.0 * *n as f64 / vs.len() as f64
        );
    }

    // How often is each violation subtype seen?
    for c in [
        Category::NonBestShort,
        Category::BestLong,
        Category::NonBestLong,
    ] {
        let n = vs.iter().filter(|v| v.category == c).count();
        println!("  {}: {n}", c.label());
    }
}
