//! Informed model: the paper's §7 future work, demonstrated end to end.
//!
//! Builds a scenario, runs the active experiments to *learn* per-AS
//! neighbor rankings, detects domestic-preferring ASes from the passive
//! campaign, and shows where the informed model explains decisions plain
//! Gao–Rexford flags as violations.
//!
//! ```sh
//! cargo run --release --example informed_model
//! ```

use ir_core::classify::{Category, Classifier, ClassifyConfig};
use ir_core::nextmodel::InformedModel;
use ir_experiments::exp_table2::monitor_setup;
use ir_experiments::scenario::{Scenario, ScenarioConfig};
use ir_measure::peering::{observe_routes, Peering};
use ir_types::{Asn, Timestamp};

fn main() {
    let s = Scenario::build(ScenarioConfig::tiny(5));
    println!(
        "scenario: {} ASes, {} decisions from the passive campaign",
        s.world.graph.len(),
        s.decisions.len()
    );

    // Learn rankings via the poisoning experiments.
    let peering = Peering::new(&s.world).expect("testbed");
    let setup = monitor_setup(&s);
    let prefix = peering.prefixes()[0];
    let mut sim = ir_bgp::PrefixSim::new(&s.world, prefix);
    sim.announce(peering.anycast(prefix, &[]), Timestamp::ZERO);
    let targets: Vec<Asn> = observe_routes(&sim, &setup)
        .keys()
        .copied()
        .filter(|a| *a != Asn::TESTBED && !peering.muxes().contains(a))
        .take(40)
        .collect();
    println!(
        "poisoning {} target ASes to reveal their preference orders…",
        targets.len()
    );
    let discoveries: Vec<_> = targets
        .iter()
        .map(|&t| peering.discover_alternates(prefix, t, &setup, 8))
        .collect();

    let learn_cl = Classifier::new(&s.inferred, ClassifyConfig::default());
    let model = InformedModel::learn(&discoveries, &s.measured, &learn_cl, &s.world.orgs, 3);
    println!(
        "learned {} (AS, neighbor) ranking pairs; detected {} domestic-preferring ASes",
        model.learned_pairs(),
        model.domestic_ases()
    );

    // Show individual upgrades.
    let classifier = Classifier::new(&s.inferred, ClassifyConfig::default());
    let mut shown = 0;
    for m in &s.measured {
        for d in m.decisions() {
            let gr = classifier.classify(&d).category;
            if gr == Category::BestShort {
                continue;
            }
            let informed = model.classify(&classifier, &d, &m.path);
            if informed == Category::BestShort && shown < 8 {
                println!(
                    "  {} -> {} toward {}: {} under GR, explained by the informed model",
                    d.observer,
                    d.next_hop,
                    d.dest,
                    gr.label()
                );
                shown += 1;
            }
        }
    }

    let (gr, informed, total) = model.evaluate(&s.inferred, ClassifyConfig::default(), &s.measured);
    println!(
        "\noverall: GR explains {gr}/{total} ({:.1}%), informed model {informed}/{total} ({:.1}%)",
        100.0 * gr as f64 / total as f64,
        100.0 * informed as f64 / total as f64
    );
}
