//! Topology explorer: inspect a generated world, compare inferred vs
//! ground-truth relationships, and export the inferred topology as a
//! CAIDA serial-1 file.
//!
//! ```sh
//! cargo run --release --example topology_explorer [seed]
//! ```

use ir_bgp::RoutingUniverse;
use ir_inference::aggregate_snapshots;
use ir_inference::feeds::{self, FeedConfig};
use ir_inference::relinfer::{infer_relationships, InferConfig};
use ir_topology::graph::AsRole;
use ir_topology::{serial, GeneratorConfig};
use ir_types::{AsType, Asn, Relationship};
use std::collections::BTreeMap;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7u64);
    let world = GeneratorConfig::tiny().build(seed);

    // Population census.
    let mut by_role: BTreeMap<String, usize> = BTreeMap::new();
    let mut by_type: BTreeMap<AsType, usize> = BTreeMap::new();
    for idx in 0..world.graph.len() {
        *by_role
            .entry(format!("{:?}", world.graph.node(idx).role))
            .or_default() += 1;
        *by_type.entry(world.graph.as_type(idx)).or_default() += 1;
    }
    println!(
        "world (seed {seed}): {} ASes, {} links",
        world.graph.len(),
        world.graph.link_count()
    );
    println!("roles: {by_role:?}");
    for (t, n) in &by_type {
        println!("  {}: {n}", t.label());
    }
    println!(
        "cables: {} systems, {} with their own ASN",
        world.cables.systems().len(),
        world.cables.cable_asns().len()
    );

    // Policy deviation census (ground truth the real Internet hides).
    let domestic = world.policies.iter().filter(|p| p.domestic_pref).count();
    let psp = world
        .policies
        .iter()
        .filter(|p| !p.selective_announce.is_empty())
        .count();
    let partial = world
        .policies
        .iter()
        .filter(|p| !p.partial_transit.is_empty())
        .count();
    let npref = world
        .policies
        .iter()
        .filter(|p| !p.neighbor_pref.is_empty())
        .count();
    let hybrid = (0..world.graph.len())
        .flat_map(|i| world.graph.links(i))
        .filter(|l| l.is_hybrid())
        .count()
        / 2;
    println!(
        "policy deviations: domestic_pref={domestic} selective_announce={psp} \
         partial_transit={partial} neighbor_pref={npref} hybrid_links={hybrid}"
    );

    // Infer relationships from collector feeds (5 monthly snapshots) and
    // compare against ground truth.
    let universe = RoutingUniverse::compute_all(&world);
    let vantages = feeds::pick_vantages(&world, &FeedConfig::default(), seed);
    let months = feeds::monthly_worlds(&world, 5, seed);
    let snapshots: Vec<_> = months
        .iter()
        .map(|m| {
            let feed = feeds::monthly_feed(m, &vantages);
            let paths: Vec<&[Asn]> = feed.paths().collect();
            infer_relationships(paths, &InferConfig::default())
        })
        .collect();
    let inferred = aggregate_snapshots(&snapshots);
    let _ = universe;

    let mut agree = 0usize;
    let mut wrong = 0usize;
    let mut missing = 0usize;
    let mut stale = 0usize;
    for a in 0..world.graph.len() {
        for l in world.graph.links(a) {
            if l.peer < a {
                continue;
            }
            let (asn_a, asn_b) = (world.graph.asn(a), world.graph.asn(l.peer));
            match inferred.rel(asn_a, asn_b) {
                None => missing += 1,
                Some(r) if r == l.rel => agree += 1,
                // Sibling links are inferred as something else by design
                // (relationship inference has no whois); count as wrong.
                Some(_) => wrong += 1,
            }
        }
    }
    for (a, b, _) in inferred.iter() {
        let known = world
            .graph
            .index_of(a)
            .zip(world.graph.index_of(b))
            .map(|(ia, ib)| world.graph.link(ia, ib).is_some())
            .unwrap_or(false);
        if !known {
            stale += 1;
        }
    }
    println!(
        "\ninferred vs ground truth: {agree} correct, {wrong} misclassified, \
         {missing} missing, {stale} stale (historical) links"
    );
    let cable_misses = world
        .cables
        .cable_asns()
        .iter()
        .map(|c| {
            inferred
                .neighbors_of(*c)
                .into_iter()
                .filter(|(n, r)| {
                    let idx = world.graph.index_of(*c).unwrap();
                    let nidx = world.graph.index_of(*n);
                    let truth = nidx.and_then(|ni| world.graph.rel(idx, ni));
                    truth.map(|t| t != *r).unwrap_or(false)
                })
                .count()
        })
        .sum::<usize>();
    println!("cable-AS links misclassified by inference: {cable_misses} (the §6 phenomenon)");

    // Export serial-1 (the interchange format; also reads real CAIDA files).
    let text = serial::to_serial1(&inferred);
    let path = std::env::temp_dir().join("inferred-topology.serial1.txt");
    std::fs::write(&path, &text).expect("write serial-1 export");
    println!(
        "\nwrote {} relationship lines to {}",
        inferred.len(),
        path.display()
    );

    // And a GraphViz rendering of the ground-truth graph.
    let dot = ir_topology::dot::to_dot(&world.graph);
    let dot_path = std::env::temp_dir().join("world.dot");
    std::fs::write(&dot_path, &dot).expect("write dot export");
    println!(
        "wrote GraphViz graph to {} (render with: sfdp -Tsvg)",
        dot_path.display()
    );

    // Show a couple of interesting ASes.
    for idx in 0..world.graph.len() {
        let node = world.graph.node(idx);
        if node.role == AsRole::CableOperator {
            let neighbors: Vec<String> = world
                .graph
                .links(idx)
                .iter()
                .map(|l| {
                    let rel = match l.rel {
                        Relationship::Customer => "customer",
                        Relationship::Peer => "peer",
                        Relationship::Provider => "provider",
                        Relationship::Sibling => "sibling",
                    };
                    format!("{} ({rel})", world.graph.asn(l.peer))
                })
                .collect();
            println!(
                "cable AS {}: subscribers = {}",
                node.asn,
                neighbors.join(", ")
            );
        }
    }
}
