//! Quickstart: generate a synthetic Internet, converge BGP, traceroute
//! toward a content host, and classify the routing decisions the way the
//! paper does.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ir_bgp::RoutingUniverse;
use ir_core::classify::{Classifier, ClassifyConfig};
use ir_core::dataset::MeasuredPath;
use ir_dataplane::geo::GeoConfig;
use ir_dataplane::{AddressPlan, GeoDb, OriginTable, TraceConfig, Tracer};
use ir_inference::feeds::{self, FeedConfig};
use ir_inference::relinfer::{infer_relationships, InferConfig};
use ir_measure::dns::Resolver;
use ir_topology::GeneratorConfig;
use ir_types::Asn;

fn main() {
    // 1. A small Internet-like world, deterministic in its seed.
    let world = GeneratorConfig::tiny().build(42);
    println!(
        "world: {} ASes, {} links, {} content providers",
        world.graph.len(),
        world.graph.link_count(),
        world.content.providers().len()
    );

    // 2. Converge BGP for every originated prefix (rayon-parallel).
    let universe = RoutingUniverse::compute_all(&world);
    println!(
        "routing: {} prefixes converged",
        universe.prefixes().count()
    );

    // 3. Build the data-plane substrate and resolve a hostname like a
    //    probe would.
    let plan = AddressPlan::build(&world);
    let geodb = GeoDb::build(&world, &plan, GeoConfig::default(), 42);
    let probe_as = world
        .graph
        .nodes()
        .iter()
        .find(|n| n.asn.value() >= 20_000)
        .expect("a stub exists")
        .asn;

    // 4. Traceroute and convert to an AS path (Chen et al. style). Not
    //    every hostname is reachable from every probe — some content
    //    prefixes are selectively announced (§4.3)! — so walk the catalog
    //    until a measurement converts cleanly, exactly as a real campaign
    //    keeps only usable traceroutes.
    let resolver = Resolver::new(&world);
    let tracer = Tracer::new(&world, &universe, &plan, TraceConfig::default(), 42);
    let table = OriginTable::from_universe(&universe);
    let (hostname, tr, measured) = world
        .content
        .hostnames()
        .find_map(|(_, hostname)| {
            let server = resolver.resolve(hostname, probe_as)?;
            let tr = tracer.run(probe_as, server);
            let measured = MeasuredPath::build(&tr, &table, &geodb)?;
            Some((hostname.to_string(), tr, measured))
        })
        .expect("some hostname is measurable from the probe");
    println!("probe {probe_as} resolves {hostname} -> {}", tr.dst_ip);
    let path: Vec<String> = measured.path.iter().map(|a| a.to_string()).collect();
    println!("AS path: {}", path.join(" -> "));

    // 5. Build an inferred topology from collector feeds and classify every
    //    decision on the path against the Gao–Rexford model.
    let vantages = feeds::pick_vantages(&world, &FeedConfig::default(), 42);
    let feed = feeds::extract_feed(&world, &universe, &vantages);
    let paths: Vec<&[Asn]> = feed.paths().collect();
    let inferred = infer_relationships(paths, &InferConfig::default());
    let classifier = Classifier::new(&inferred, ClassifyConfig::default());
    let decisions = measured.decisions();
    // classify_batch fans out over all cores and returns verdicts in input
    // order; for one path it is overkill, but it is the API the experiment
    // drivers use on whole campaigns.
    let verdicts = classifier.classify_batch(&decisions);
    for (d, v) in decisions.iter().zip(&verdicts) {
        println!(
            "  {} -> {} toward {}: {}",
            d.observer,
            d.next_hop,
            d.dest,
            v.category.label()
        );
    }
}
