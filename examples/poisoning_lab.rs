//! Poisoning lab: drive the PEERING-like testbed by hand.
//!
//! Recreates §3.2 interactively: announce a research prefix via the
//! university muxes, watch a target AS's route from the measurement
//! channels, poison its next hop, and watch it fall back to its
//! second-choice route — the only way to see *relative* preferences from
//! the outside.
//!
//! ```sh
//! cargo run --release --example poisoning_lab
//! ```

use ir_bgp::PrefixSim;
use ir_core::alternates::{check_order, LinkAccounting, OrderSummary};
use ir_inference::feeds::{self, FeedConfig};
use ir_inference::relinfer::{infer_relationships, InferConfig};
use ir_measure::peering::{observe_routes, ObservationSetup, Peering};
use ir_topology::GeneratorConfig;
use ir_types::{Asn, Timestamp};

fn main() {
    let world = GeneratorConfig::tiny().build(1234);
    let peering = Peering::new(&world).expect("world includes the testbed");
    println!(
        "testbed {} announces {} via {} muxes: {:?}",
        Asn::TESTBED,
        peering.prefixes()[0],
        peering.muxes().len(),
        peering.muxes()
    );

    // The measurement channels: collectors + a handful of monitor probes.
    let vantages = feeds::pick_vantages(
        &world,
        &FeedConfig {
            vantages: 12,
            ..Default::default()
        },
        5,
    );
    let probe_ases: Vec<Asn> = world
        .graph
        .nodes()
        .iter()
        .filter(|n| n.asn.value() >= 20_000)
        .step_by(5)
        .map(|n| n.asn)
        .take(12)
        .collect();
    let setup = ObservationSetup {
        feed_vantages: vantages.clone(),
        probe_ases,
    };

    // Round 0: plain anycast. Pick an observed multihomed target.
    let prefix = peering.prefixes()[0];
    let mut sim = PrefixSim::new(&world, prefix);
    sim.announce(peering.anycast(prefix, &[]), Timestamp::ZERO);
    let obs = observe_routes(&sim, &setup);
    let target = *obs
        .keys()
        .find(|a| {
            let idx = world.graph.index_of(**a).unwrap();
            world.graph.links(idx).len() >= 3 && **a != Asn::TESTBED
        })
        .expect("an observed multihomed AS");
    println!("\ntarget: {target}");

    // Step through the poisoning rounds manually so each reaction is
    // visible.
    let mut poison: Vec<Asn> = Vec::new();
    for round in 0..6 {
        let at = Timestamp(round as u64 * 90 * 60);
        sim.announce(peering.anycast(prefix, &poison), at);
        let obs = observe_routes(&sim, &setup);
        match obs.get(&target) {
            Some(o) => {
                let next = o.next_hop().expect("suffix non-empty");
                let suffix: Vec<String> = o.suffix.iter().map(|a| a.to_string()).collect();
                println!("round {round}: {target} routes via {}", suffix.join(" "));
                if poison.contains(&next) {
                    println!("  poisoning {next} did not dislodge it — stopping");
                    break;
                }
                poison.push(next);
                println!("  poisoning {next} next round");
            }
            None => {
                println!("round {round}: {target} has no (observable) route left");
                break;
            }
        }
    }

    // The automated version over many targets, checked against an inferred
    // topology as §4.4 does.
    let month = feeds::monthly_feed(&world, &vantages);
    let paths: Vec<&[Asn]> = month.paths().collect();
    let inferred = infer_relationships(paths, &InferConfig::default());
    let targets: Vec<Asn> = obs
        .keys()
        .copied()
        .filter(|a| *a != Asn::TESTBED)
        .take(25)
        .collect();
    let discoveries: Vec<_> = targets
        .iter()
        .map(|&t| peering.discover_alternates(prefix, t, &setup, 8))
        .collect();
    let verdicts: Vec<_> = discoveries
        .iter()
        .map(|d| check_order(&inferred, d))
        .collect();
    let summary = OrderSummary::tally(verdicts.iter());
    println!(
        "\nover {} informative targets: both={} best-only={} shortest-only={} neither={}",
        summary.total(),
        summary.both,
        summary.best_only,
        summary.shortest_only,
        summary.neither
    );
    let acc = LinkAccounting::build(&inferred, &discoveries);
    println!(
        "links observed: {} | missing from inferred topology: {} | only via poisoning: {}",
        acc.observed.len(),
        acc.missing_from_db.len(),
        acc.only_via_poisoning.len()
    );
}
