#!/usr/bin/env bash
# Full local gate: everything CI (and the next contributor) expects to pass.
# Usage: scripts/check.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
if [[ "${1:-}" == "--offline" ]] || ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    OFFLINE=(--offline)
fi

run() {
    echo "==> $*"
    "$@"
}

run cargo build "${OFFLINE[@]}" --release --workspace
run cargo test "${OFFLINE[@]}" -q --workspace
run cargo clippy "${OFFLINE[@]}" --workspace -- -D warnings
# Graceful-degradation gate: every workspace library must not panic on
# malformed input. All lib targets deny clippy::unwrap_used /
# clippy::expect_used (tests are exempt via cfg_attr); this pass fails
# the build if a violation slips in.
run cargo clippy "${OFFLINE[@]}" -p ir-types -p ir-fault -p ir-inference -p ir-core \
    -p ir-measure -p ir-dataplane -p ir-bgp -p ir-topology \
    -p ir-audit -p ir-scenarios -p ir-experiments -p ir-serve -p ir-bench --lib -- -D warnings
run cargo fmt --check
# Engine-equivalence gate in release: the differential suites compare the
# event-driven engine against the sweep oracle — and warm what-if answers
# against cold recomputation — under optimized codegen too (debug-only
# runs have missed wrapping/ordering bugs before).
run cargo test "${OFFLINE[@]}" --release -q -p ir-bgp \
    --test differential --test fault_differential --test whatif_differential
# Certificate-maintenance gate (release): ≥1000 randomized (certified
# world, delta batch) pairs must get the same verdict from the incremental
# DeltaAuditor as from a full re-audit of the edited world, and certified
# Free-order serving answers must stay route-for-route exact (ages
# included) against cold WaveExact replay under both verdicts.
run cargo test "${OFFLINE[@]}" --release -q -p ir-audit \
    --test delta_audit_differential
# Security-scenario gate (release): hijack scenarios must equal
# hand-driven cold engine convergence, 0%-adoption sweeps must equal
# plain delta replay byte-for-byte, full-ROV capture sets must match the
# per-attack node-level invariants, rayon and sequential sweeps must
# render identical bytes, and warm hijack what-ifs must stay
# route-for-route exact (ages included) against cold scenario runs under
# every defense and both certifier verdicts.
run cargo test "${OFFLINE[@]}" --release -q -p ir-scenarios \
    --test hijack_differential --test sweep_invariants --test warm_hijack
# Internet-scale smoke (release, ignored by default): a ≥50k-AS world must
# converge a single prefix and a 1000-prefix universe slice inside the
# compact storage's memory budget. Minutes on one core.
run cargo test "${OFFLINE[@]}" --release -q -p ir-bgp --test scale_smoke -- --ignored
# Serving-loop gate (release): the real ir-serve binary on an ephemeral
# port answers a 50-query mixed batch (malformed JSON and over-deadline
# included), drains clean on a shutdown request, and exits 0 — and a
# SIGKILL mid-snapshot-write must recover the last-good image on restart.
run cargo test "${OFFLINE[@]}" --release -q -p ir-serve \
    --test server_smoke --test crash_safety
# Bench-artifact schema gate: the committed BENCH_*.json files at the repo
# root must parse and carry the keys documentation and dashboards read.
run cargo test "${OFFLINE[@]}" -q -p ir-bench --test bench_schema
# Policy-safety gate: the generated tiny world must audit clean (the
# binary exits 1 on any Error-severity finding).
run cargo run "${OFFLINE[@]}" --release -p ir-experiments --bin audit -- --scale tiny --seed 7
# Artifact freshness: the committed repro_paper_seed7.* files must match
# a fresh zero-fault paper-scale run (minutes; release only).
run cargo test "${OFFLINE[@]}" --release -q -p ir-experiments --test artifact_freshness \
    -- --ignored

echo "All checks passed."
