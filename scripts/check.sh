#!/usr/bin/env bash
# Full local gate: everything CI (and the next contributor) expects to pass.
# Usage: scripts/check.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
if [[ "${1:-}" == "--offline" ]] || ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    OFFLINE=(--offline)
fi

run() {
    echo "==> $*"
    "$@"
}

run cargo build "${OFFLINE[@]}" --release --workspace
run cargo test "${OFFLINE[@]}" -q --workspace
run cargo clippy "${OFFLINE[@]}" --workspace -- -D warnings
# Graceful-degradation gate: data-path library code in ir-measure and
# ir-dataplane must not panic on malformed input. Both crates deny
# clippy::unwrap_used / clippy::expect_used on their lib targets (tests are
# exempt via cfg_attr); this pass fails the build if a violation slips in.
run cargo clippy "${OFFLINE[@]}" -p ir-measure -p ir-dataplane --lib -- -D warnings
run cargo fmt --check

echo "All checks passed."
