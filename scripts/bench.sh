#!/usr/bin/env bash
# Perf benchmarks with recorded artifacts. Runs the propagation-engine
# head-to-head (event-driven worklist vs legacy full-sweep oracle), the
# internet-scale route-storage sweep, the what-if serving comparison
# (warm fork + seeded reconvergence vs cold recomputation), and the
# security-scenario adoption sweep (three defenses x the attack ladder),
# (re)writing BENCH_propagation.json, BENCH_scale.json,
# BENCH_whatif.json and BENCH_hijack.json at the repo root with timings,
# speedups, work counters, per-tier ns/route + bytes/route, warm/cold
# queries/s, and per-(defense, attack, adoption) outcome-rate curves.
#
# Usage: scripts/bench.sh [--offline] [--samples N]
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
SAMPLES="${IR_BENCH_SAMPLES:-}"
while [[ $# -gt 0 ]]; do
    case "$1" in
        --offline) OFFLINE=(--offline); shift ;;
        --samples) SAMPLES="$2"; shift 2 ;;
        *) echo "usage: scripts/bench.sh [--offline] [--samples N]" >&2; exit 2 ;;
    esac
done
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    OFFLINE=(--offline)
fi

if [[ -n "$SAMPLES" ]]; then
    export IR_BENCH_SAMPLES="$SAMPLES"
fi

cargo bench "${OFFLINE[@]}" -p ir-bench --bench propagation
cargo bench "${OFFLINE[@]}" -p ir-bench --bench scale
cargo bench "${OFFLINE[@]}" -p ir-bench --bench whatif
cargo bench "${OFFLINE[@]}" -p ir-bench --bench hijack

echo
echo "==> BENCH_propagation.json"
cat BENCH_propagation.json
echo
echo "==> BENCH_scale.json"
cat BENCH_scale.json
echo
echo "==> BENCH_whatif.json"
cat BENCH_whatif.json
echo
echo "==> BENCH_hijack.json"
cat BENCH_hijack.json
