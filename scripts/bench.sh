#!/usr/bin/env bash
# Propagation-engine benchmark: event-driven worklist vs legacy full-sweep
# oracle. Prints the criterion groups and (re)writes BENCH_propagation.json
# at the repo root with the head-to-head timings and speedups.
#
# Usage: scripts/bench.sh [--offline] [--samples N]
set -euo pipefail
cd "$(dirname "$0")/.."

OFFLINE=()
SAMPLES="${IR_BENCH_SAMPLES:-}"
while [[ $# -gt 0 ]]; do
    case "$1" in
        --offline) OFFLINE=(--offline); shift ;;
        --samples) SAMPLES="$2"; shift 2 ;;
        *) echo "usage: scripts/bench.sh [--offline] [--samples N]" >&2; exit 2 ;;
    esac
done
if ! cargo metadata --format-version 1 >/dev/null 2>&1; then
    OFFLINE=(--offline)
fi

if [[ -n "$SAMPLES" ]]; then
    export IR_BENCH_SAMPLES="$SAMPLES"
fi

cargo bench "${OFFLINE[@]}" -p ir-bench --bench propagation

echo
echo "==> BENCH_propagation.json"
cat BENCH_propagation.json
