//! End-to-end integration: build one full scenario and regenerate every
//! table and figure, asserting the paper's qualitative shapes.
//!
//! These tests intentionally assert *shapes* (who wins, what dominates,
//! which refinement helps) rather than absolute numbers: the substrate is
//! a synthetic Internet, not the authors' 2015 measurement window.

use ir_core::refine::Variant;
use ir_experiments::scenario::{Scenario, ScenarioConfig};
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::build(ScenarioConfig::tiny(7)))
}

#[test]
fn dataset_statistics_have_paper_structure() {
    let s = scenario();
    // §3.1: traceroutes end in far more destination ASes than there are
    // content providers (off-net caches), and decisions are observed for
    // many more ASes than there are probes' networks.
    assert!(s.campaign.destination_ases() > s.world.content.providers().len());
    assert!(s.observed_ases() > 30);
    assert!(s.universe.unconverged().is_empty());
    // The inferred topology is a biased subset of ground truth.
    assert!(s.inferred.len() < s.world.graph.link_count());
}

#[test]
fn figure1_shapes() {
    let f = ir_experiments::exp_fig1::run(scenario());
    let simple = f.bar(Variant::Simple).unwrap();
    let all1 = f.bar(Variant::All1).unwrap();
    let all2 = f.bar(Variant::All2).unwrap();
    // A majority but far from all decisions follow the plain model.
    assert!(simple.best_short > 55.0 && simple.best_short < 92.0);
    // The refinement pipeline explains more, with criterion 1 ≥ criterion 2.
    assert!(all1.best_short >= simple.best_short);
    assert!(all1.best_short >= all2.best_short - 1e-9);
    // Complex relationships barely move the needle (§4.1).
    let complex = f.bar(Variant::Complex).unwrap();
    assert!((complex.best_short - simple.best_short).abs() < 2.0);
}

#[test]
fn table1_covers_the_hierarchy_bottom_heavily() {
    let t = ir_experiments::exp_table1::run(scenario());
    assert_eq!(t.rows.len(), 4);
    let stub = &t.rows[0];
    assert_eq!(stub.as_type, "Stub-AS");
    // Vantage points sit near the edge (the paper's Table 1 shape).
    assert!(stub.probes * 2 > t.total_probes);
    assert!(t.rows[1].probes > 0, "some probes in small ISPs");
}

#[test]
fn table2_tie_breakers_carry_real_mass() {
    let t = ir_experiments::exp_table2::run(scenario());
    let pct = |name: &str| {
        t.rows
            .iter()
            .find(|r| r.decision == name)
            .map(|r| r.feeds_pct)
            .unwrap_or(0.0)
    };
    // Relationship + length dominate…
    assert!(pct("Best relationship") + pct("Shorter path") > 50.0);
    // …but the steps today's models ignore exceed the paper's 17% bar.
    let ignored = pct("Intradomain tie-breaker") + pct("Oldest route (magnet)");
    assert!(ignored > 10.0, "tie-breaker mass {ignored:.1}%");
}

#[test]
fn alternates_follow_gr_order_mostly() {
    let a = ir_experiments::exp_alternates::run(scenario(), 40);
    assert!(a.informative_targets >= 10);
    // The overwhelming majority follows both order properties (paper 86%).
    assert!(a.both * 3 >= a.informative_targets * 2, "{a:?}");
    // Poisoning exposes links passive feeds never see (paper 22.2%).
    assert!(a.observed_links > 0);
}

#[test]
fn figure2_violations_skew_to_content_destinations() {
    let f = ir_experiments::exp_fig2::run(scenario());
    assert!(f.total_violations > 0);
    // Destination-side skew exceeds source-side skew (§5's key contrast).
    assert!(
        f.dest_skew > f.src_skew,
        "dest {:.3} vs src {:.3}",
        f.dest_skew,
        f.src_skew
    );
    // At least one of the top destinations is a content provider.
    assert!(
        f.top_destinations
            .iter()
            .take(3)
            .any(|(_, _, p)| p.is_some()),
        "content providers among top violation destinations: {:?}",
        f.top_destinations
    );
}

#[test]
fn figure3_continental_paths_better_explained() {
    let f = ir_experiments::exp_fig3::run(scenario());
    let cont = f.bar("Cont").unwrap();
    let non = f.bar("Non Cont").unwrap();
    assert!(cont.best_short > non.best_short);
}

#[test]
fn table3_domestic_preference_has_signal() {
    let t = ir_experiments::exp_table3::run(scenario());
    assert!(t.overall_fraction > 0.05, "{:.3}", t.overall_fraction);
}

#[test]
fn table4_cables_are_rare_but_deviant() {
    let t = ir_experiments::exp_table4::run(scenario());
    assert!(t.path_fraction < 0.25);
    if t.deviant_fraction > 0.0 {
        assert!(t.deviant_fraction > t.baseline_deviant_fraction);
    }
}

#[test]
fn validation_precision_is_high_but_imperfect() {
    let v = ir_experiments::exp_validation::run(scenario(), 10);
    assert!(v.cases > 0);
    assert!(v.true_precision > 0.4 && v.true_precision <= 1.0);
}

#[test]
fn all_results_serialize_to_json() {
    let s = scenario();
    let blob = serde_json::json!({
        "table1": ir_experiments::exp_table1::run(s),
        "fig1": ir_experiments::exp_fig1::run(s),
        "fig2": ir_experiments::exp_fig2::run(s),
        "fig3": ir_experiments::exp_fig3::run(s),
        "table3": ir_experiments::exp_table3::run(s),
        "table4": ir_experiments::exp_table4::run(s),
        "validation": ir_experiments::exp_validation::run(s, 10),
    });
    let text = serde_json::to_string(&blob).expect("serializable");
    assert!(text.len() > 500);
}

#[test]
fn scenario_build_is_deterministic() {
    let a = scenario();
    let b = Scenario::build(ScenarioConfig::tiny(7));
    assert_eq!(a.decisions.len(), b.decisions.len());
    assert_eq!(a.inferred, b.inferred);
    assert_eq!(
        a.probes.iter().map(|p| p.asn).collect::<Vec<_>>(),
        b.probes.iter().map(|p| p.asn).collect::<Vec<_>>()
    );
    // Different seed ⇒ different dataset.
    let c = Scenario::build(ScenarioConfig::tiny(8));
    assert_ne!(a.inferred, c.inferred);
}
