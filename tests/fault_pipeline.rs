//! Pipeline-level fault differential: the whole scenario → experiment stack
//! run under the fault plane.
//!
//! Three properties, mirroring the per-crate differential suites one layer up:
//! 1. A quiet plane is a strict no-op — a scenario built with explicit zero
//!    rates produces exactly the same tables, figures, and campaign as the
//!    default config (which never consults the plane at all).
//! 2. Faults are deterministic end to end — same seed, same rates ⇒ the
//!    same serialized Table 1 / Table 2 / Fig 1 and the same accounting.
//! 3. Under a hostile plane the pipeline still completes: no panics, every
//!    injected fault is accounted for, and the headline fractions remain
//!    finite and sane (they shift, they don't collapse).

use ir_experiments::scenario::{Scenario, ScenarioConfig};
use ir_fault::FaultConfig;

/// Serialize every pipeline output that reaches the paper artifacts.
fn artifacts(s: &Scenario) -> String {
    let t1 = serde_json::to_string(&ir_experiments::exp_table1::run(s)).expect("serialize table1");
    let t2 = serde_json::to_string(&ir_experiments::exp_table2::run(s)).expect("serialize table2");
    let f1 = serde_json::to_string(&ir_experiments::exp_fig1::run(s)).expect("serialize fig1");
    format!("{t1}\n{t2}\n{f1}\n{}", s.campaign.report)
}

#[test]
fn quiet_plane_is_a_pipeline_noop() {
    let default = Scenario::build(ScenarioConfig::tiny(7));
    let mut cfg = ScenarioConfig::tiny(7);
    cfg.faults = FaultConfig::quiet();
    let explicit = Scenario::build(cfg);

    assert_eq!(artifacts(&default), artifacts(&explicit));
    assert_eq!(explicit.plane.stats().total(), 0, "quiet plane never fires");
    let res = explicit.universe.resilience();
    assert_eq!(res.fault_events, 0);
    assert_eq!(res.recovery_rounds, 0);
    assert_eq!(res.sessions_torn, 0);
    assert_eq!(res.links_down_at_end, 0);
    let r = explicit.campaign.report;
    assert_eq!((r.retried, r.abandoned, r.probes_lost), (0, 0, 0));
    assert_eq!(r.dns_failures + r.probe_dropouts, 0);
}

#[test]
fn faulted_pipeline_is_deterministic() {
    let build = || {
        let mut cfg = ScenarioConfig::tiny(11);
        cfg.faults = FaultConfig::chaos(0.5);
        Scenario::build(cfg)
    };
    let a = build();
    let b = build();
    assert_eq!(artifacts(&a), artifacts(&b));
    assert_eq!(a.plane.stats(), b.plane.stats());
    assert_eq!(a.universe.resilience(), b.universe.resilience());
}

#[test]
fn hostile_plane_degrades_instead_of_collapsing() {
    let mut cfg = ScenarioConfig::tiny(7);
    cfg.faults = FaultConfig::chaos(0.5);
    let s = Scenario::build(cfg);

    // The plane actually did something.
    assert!(s.plane.stats().total() > 0, "chaos plane fired no faults");
    // Campaign accounting closes: every planned measurement ended somewhere.
    assert!(s.campaign.accounted(), "{}", s.campaign.report);
    // Attempts cover every success (an abandoned measurement may have had
    // none: a dead probe abandons its queue without executing it).
    let r = s.campaign.report;
    assert!(r.attempted >= r.succeeded);
    assert!(r.retried <= r.attempted);
    // Control-plane recovery is reflected in the universe counters: every
    // scheduled timed fault was applied to every announced prefix.
    let res = s.universe.resilience();
    if !s.plane.schedule().is_empty() {
        assert!(res.fault_events > 0, "scheduled faults were never applied");
    }

    // The experiments complete and keep their structural shape.
    let t1 = ir_experiments::exp_table1::run(&s);
    assert_eq!(t1.rows.len(), 4);
    let t2 = ir_experiments::exp_table2::run(&s);
    for row in &t2.rows {
        for pct in [row.feeds_pct, row.traceroutes_pct] {
            assert!(pct.is_finite() && (0.0..=100.0).contains(&pct));
        }
    }
    let f1 = ir_experiments::exp_fig1::run(&s);
    for v in [
        ir_core::refine::Variant::Simple,
        ir_core::refine::Variant::All1,
    ] {
        if let Some(bar) = f1.bar(v) {
            assert!(bar.best_short.is_finite());
            assert!((0.0..=100.0).contains(&bar.best_short));
        }
    }
}
