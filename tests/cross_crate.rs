//! Cross-crate invariants: things that must hold *between* subsystems —
//! control plane vs data plane, ground truth vs inference, policy vs
//! observation. These are the checks a real measurement study cannot run
//! (no ground truth) but a simulation must pass to be trustworthy.

use ir_bgp::{Announcement, PrefixSim};
use ir_core::classify::{Classifier, ClassifyConfig};
use ir_experiments::scenario::{Scenario, ScenarioConfig};
use ir_measure::peering::{observe_routes, ObservationSetup, Peering};
use ir_types::{Asn, Relationship, Timestamp};
use std::collections::BTreeMap;
use std::sync::OnceLock;

fn scenario() -> &'static Scenario {
    static S: OnceLock<Scenario> = OnceLock::new();
    S.get_or_init(|| Scenario::build(ScenarioConfig::tiny(11)))
}

#[test]
fn data_plane_follows_control_plane() {
    // Every reached traceroute's ground-truth AS path must equal the
    // control-plane path of its source toward the destination prefix.
    let s = scenario();
    let mut checked = 0;
    for tr in s
        .campaign
        .traceroutes
        .iter()
        .filter(|t| t.reached)
        .take(300)
    {
        let Some(pfx) = s.universe.lpm(tr.dst_ip) else {
            continue;
        };
        let Some(src_idx) = s.world.graph.index_of(tr.src_as) else {
            continue;
        };
        let Some(route) = s.universe.route(pfx, src_idx) else {
            continue;
        };
        let mut control = vec![tr.src_as];
        if !route.is_local() {
            // A local route means the destination (e.g. an off-net cache)
            // lives inside the probe's own AS.
            control.extend(route.path.sequence_asns());
        }
        // AS-path prepending repeats ASNs in the control-plane path but is
        // invisible to forwarding; collapse before comparing.
        control.dedup();
        assert_eq!(
            tr.true_as_path(),
            control,
            "forwarding = routing for {}",
            tr.src_as
        );
        checked += 1;
    }
    assert!(checked > 100, "enough paths checked");
}

#[test]
fn measured_links_are_mostly_real() {
    // IP→AS conversion has artifacts, but the overwhelming majority of
    // adjacent pairs in converted paths are true topology links.
    let s = scenario();
    let mut real = 0usize;
    let mut bogus = 0usize;
    for m in &s.measured {
        for w in m.path.windows(2) {
            let linked = s
                .world
                .graph
                .index_of(w[0])
                .zip(s.world.graph.index_of(w[1]))
                .map(|(a, b)| s.world.graph.link(a, b).is_some())
                .unwrap_or(false);
            if linked {
                real += 1;
            } else {
                bogus += 1;
            }
        }
    }
    let frac = real as f64 / (real + bogus).max(1) as f64;
    assert!(frac > 0.85, "true-link fraction {frac:.3}");
    assert!(
        bogus > 0,
        "artifacts exist — the conversion problem is real"
    );
}

#[test]
fn inference_is_accurate_where_it_speaks() {
    // Inferred relationships mostly agree with ground truth on links both
    // know (the whole study depends on this being imperfect-but-usable).
    let s = scenario();
    let mut agree = 0usize;
    let mut disagree = 0usize;
    for (a, b, rel) in s.inferred.iter() {
        let truth = s
            .world
            .graph
            .index_of(a)
            .zip(s.world.graph.index_of(b))
            .and_then(|(ia, ib)| s.world.graph.rel(ia, ib));
        match truth {
            Some(t) if t == rel => agree += 1,
            Some(_) => disagree += 1,
            None => {} // stale/historical link: accuracy undefined
        }
    }
    let frac = agree as f64 / (agree + disagree).max(1) as f64;
    assert!(frac > 0.7, "inference agreement {frac:.3}");
    assert!(
        disagree > 0,
        "misinference exists — deviations need a source"
    );
}

#[test]
fn ground_truth_psp_is_what_psp_criterion_sees() {
    // For origins with a ground-truth selective announcement, criterion 1
    // must find at least one of them among its cases.
    let s = scenario();
    let origins: Vec<(Asn, ir_types::Prefix)> = s
        .world
        .graph
        .nodes()
        .iter()
        .filter(|n| n.prefixes.len() >= 2)
        .flat_map(|n| n.prefixes.iter().map(move |p| (n.asn, *p)))
        .collect();
    let cases = ir_core::validate::psp_cases(&s.inferred, &s.feed, &origins);
    let mut true_hits = 0;
    for c in &cases {
        if let Some(idx) = s.world.graph.index_of(c.origin) {
            if !s.world.policy(idx).may_announce(&c.prefix, c.neighbor) {
                true_hits += 1;
            }
        }
    }
    assert!(
        true_hits > 0,
        "criterion 1 finds real selective announcements"
    );
}

#[test]
fn poisoning_respects_policy_opt_outs() {
    // After poisoning AS P, no observed route crosses P — unless P (or an
    // AS on the path) opted out of the checks (§4.4 limitations).
    let s = scenario();
    let peering = Peering::new(&s.world).unwrap();
    let prefix = peering.prefixes()[0];
    let setup = ObservationSetup {
        feed_vantages: s.vantages.clone(),
        probe_ases: s.probes.iter().map(|p| p.asn).take(20).collect(),
    };
    let mut sim = PrefixSim::new(&s.world, prefix);
    sim.announce(peering.anycast(prefix, &[]), Timestamp::ZERO);
    let obs = observe_routes(&sim, &setup);
    // Poison the most common next hop. The testbed origin itself is not a
    // candidate: its ASN is in every announced path by construction, so
    // "poisoning" it would be meaningless.
    let mut counts: BTreeMap<Asn, usize> = BTreeMap::new();
    for o in obs.values() {
        if let Some(n) = o.next_hop() {
            if n != Asn::TESTBED {
                *counts.entry(n).or_default() += 1;
            }
        }
    }
    let (&victim, _) = counts.iter().max_by_key(|(_, n)| **n).unwrap();
    sim.announce(peering.anycast(prefix, &[victim]), Timestamp(5400));
    let after = observe_routes(&sim, &setup);
    let victim_idx = s.world.graph.index_of(victim).unwrap();
    let victim_opted_out = s.world.policy(victim_idx).no_loop_prevention;
    for (x, o) in &after {
        if *x == victim {
            continue;
        }
        if o.suffix.contains(&victim) && !victim_opted_out {
            // Every AS between x and the victim would need the route; the
            // victim itself must have dropped it unless it ignores AS-sets.
            panic!(
                "route via poisoned {victim} observed at {x}: {:?}",
                o.suffix
            );
        }
    }
}

#[test]
fn sibling_inference_matches_ground_truth_orgs() {
    let s = scenario();
    let mut by_org: BTreeMap<u32, Vec<Asn>> = BTreeMap::new();
    for n in s.world.graph.nodes() {
        by_org.entry(n.org.0).or_default().push(n.asn);
    }
    for group in by_org.values().filter(|g| g.len() >= 2) {
        for pair in group.windows(2) {
            assert!(
                s.siblings.are_siblings(pair[0], pair[1]),
                "{} {} inferred as siblings",
                pair[0],
                pair[1]
            );
        }
    }
}

#[test]
fn hybrid_ground_truth_reaches_the_classifier() {
    // A hybrid link with a known city must produce a different effective
    // relationship than the plain topology at that city.
    let s = scenario();
    let Some(entry) = s.complex.hybrids().first() else {
        return; // seed produced no covered hybrids; other seeds test this
    };
    let cfg = ClassifyConfig {
        complex: Some(&s.complex),
        ..ClassifyConfig::default()
    };
    let classifier = Classifier::new(&s.inferred, cfg);
    let d = ir_core::dataset::Decision {
        observer: entry.a,
        next_hop: entry.b,
        dest: entry.b,
        prefix: None,
        src: entry.a,
        suffix_len: 1,
        link_city: Some(entry.city),
        path_index: 0,
    };
    assert_eq!(classifier.effective_rel(&d), Some(entry.rel_of_b_from_a));
}

#[test]
fn export_policy_never_leaks_peer_routes_upstream() {
    // Gao–Rexford export safety on the converged universe: if AS x's best
    // route toward some prefix was learned from a peer or provider, then x
    // must never appear as the penultimate hop on a route selected by one
    // of its peers or providers through x... — checked the direct way:
    // walk every selected route and verify each forwarding step respects
    // the exportability of the step after it.
    let s = scenario();
    let mut steps = 0usize;
    for prefix in s.universe.prefixes().take(40) {
        for x in 0..s.world.graph.len() {
            let Some(route) = s.universe.route(prefix, x) else {
                continue;
            };
            if route.is_local() {
                continue;
            }
            let seq = route.path.sequence_asns();
            // route.rel is the class x learned the route on; the AS that
            // exported it (seq[0]) must have been allowed to export its own
            // route to x. Reconstruct seq[0]'s class from ITS route.
            let exporter = s.world.graph.index_of(seq[0]).unwrap();
            let Some(exp_route) = s.universe.route(prefix, exporter) else {
                continue;
            };
            if exp_route.is_local() {
                continue;
            }
            let exp_rel = exp_route.rel.expect("non-local route has a class");
            let rel_of_x_from_exporter =
                s.world.graph.rel(exporter, x).expect("adjacent").reverse();
            // Hybrid sessions may differ per city; the default relationship
            // check is sufficient for non-hybrid links.
            let link = s.world.graph.link(exporter, x).unwrap();
            if link.is_hybrid() {
                continue;
            }
            let _ = rel_of_x_from_exporter;
            assert!(
                exp_rel.exportable_to(s.world.graph.rel(exporter, x).unwrap()),
                "{} exported a {exp_rel}-learned route to its {}",
                seq[0],
                s.world.graph.rel(exporter, x).unwrap()
            );
            steps += 1;
        }
    }
    assert!(steps > 500, "checked {steps} forwarding steps");
}

#[test]
fn relationship_rank_matches_route_class_preference() {
    // On the converged universe, whenever an AS has a candidate customer
    // route it never selects a provider route (absent policy deviations at
    // that AS).
    let s = scenario();
    let mut checked = 0usize;
    for prefix in s.universe.prefixes().take(30) {
        let mut sim = PrefixSim::new(&s.world, prefix);
        let origin = s.universe.origin(prefix).unwrap();
        sim.announce(Announcement::plain(origin, prefix), Timestamp::ZERO);
        for x in 0..s.world.graph.len() {
            if !s.world.policy(x).is_plain_gr() {
                continue;
            }
            let cands = sim.candidates(x);
            let Some(best) = sim.best(x) else { continue };
            let Some(best_rel) = best.rel else { continue };
            if cands
                .iter()
                .any(|c| matches!(c.rel, Some(Relationship::Customer | Relationship::Sibling)))
            {
                assert_ne!(
                    best_rel,
                    Relationship::Provider,
                    "{} took a provider route over a customer route",
                    s.world.graph.asn(x)
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 20, "checked {checked} selections");
}
