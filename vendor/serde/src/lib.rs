//! Offline façade of the `serde` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, self-contained replacement. Types opt in through the
//! usual `#[derive(Serialize, Deserialize)]`, but the data model is a
//! simple self-describing [`Value`] tree instead of serde's
//! serializer/deserializer visitors: `Serialize` renders a value into a
//! [`Value`], `Deserialize` reads one back. `serde_json` (also vendored)
//! renders `Value` trees to JSON text and parses them back.
//!
//! Supported derive shapes (everything the workspace uses):
//! structs with named fields, tuple/newtype structs, `#[serde(transparent)]`,
//! and enums with unit, tuple, and struct variants (externally tagged).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// The self-describing data model every `Serialize` impl renders into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also covers every negative JSON number).
    Int(i64),
    /// Unsigned integers that may exceed `i64::MAX`.
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Key/value pairs in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Member lookup on objects; `Null` reference for anything else.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The string form used when this value serves as a map key.
    pub fn into_key_string(self) -> String {
        match self {
            Value::String(s) => s,
            Value::Int(i) => i.to_string(),
            Value::UInt(u) => u.to_string(),
            Value::Bool(b) => b.to_string(),
            other => panic!("unsupported map key {other:?}"),
        }
    }
}

static NULL_VALUE: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Objects gain the key on first write, like `serde_json`'s `Value`.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let Value::Object(entries) = self else {
            panic!("cannot index non-object value with {key:?}");
        };
        if let Some(pos) = entries.iter().position(|(k, _)| k == key) {
            &mut entries[pos].1
        } else {
            entries.push((key.to_string(), Value::Null));
            &mut entries.last_mut().expect("just pushed").1
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Reads `Self` back out of a [`Value`].
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, DeError>;
}

/// Used by derived `Deserialize` impls: field lookup that treats a missing
/// key as `Null` (so `Option` fields tolerate omission).
pub fn __get_field<'a>(obj: &'a [(String, Value)], key: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| DeError::new("integer out of range"))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::new("expected bool"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(t) => t.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

/// Maps serialize as arrays of `[key, value]` pairs, so arbitrary key
/// types (tuples, newtypes) round-trip without string conversion. Real
/// serde_json would reject non-string keys; this façade only needs its
/// own output to parse back.
fn serialize_map_entries<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Array(
        entries
            .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
            .collect(),
    )
}

fn deserialize_map_entries<K: Deserialize, V: Deserialize>(
    v: &Value,
) -> Result<Vec<(K, V)>, DeError> {
    v.as_array()
        .ok_or_else(|| DeError::new("expected array of map entries"))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| DeError::new("expected [key, value] pair in map entry array"))?;
            Ok((K::deserialize(&pair[0])?, V::deserialize(&pair[1])?))
        })
        .collect()
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        serialize_map_entries(self.iter())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        serialize_map_entries(entries.into_iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(deserialize_map_entries(v)?.into_iter().collect())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(v: &Value) -> Result<Self, DeError> {
        Ok(deserialize_map_entries(v)?.into_iter().collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                Ok(($($name::deserialize(
                    a.get($idx).ok_or_else(|| DeError::new("tuple too short"))?)?,)+))
            }
        }
    )*};
}
ser_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::deserialize(&42u32.serialize()), Ok(42));
        assert_eq!(
            String::deserialize(&"x".to_string().serialize()),
            Ok("x".into())
        );
        assert_eq!(Option::<u8>::deserialize(&Value::Null), Ok(None));
        let v: Vec<u16> = vec![1, 2, 3];
        assert_eq!(Vec::<u16>::deserialize(&v.serialize()), Ok(v));
    }

    #[test]
    fn maps_round_trip_arbitrary_keys() {
        let mut m = BTreeMap::new();
        m.insert((7u32, 8u32), "pair".to_string());
        assert_eq!(
            BTreeMap::<(u32, u32), String>::deserialize(&m.serialize()),
            Ok(m)
        );
        let mut h = HashMap::new();
        h.insert(3u64, vec![1u8, 2]);
        assert_eq!(HashMap::<u64, Vec<u8>>::deserialize(&h.serialize()), Ok(h));
    }
}
