//! Offline JSON façade matching the slice of `serde_json` this workspace
//! uses: `json!`, `to_value`, `to_string{,_pretty}`, `from_str`, and
//! `Value` indexing by string key.
//!
//! Built on the vendored serde's [`Value`] tree rather than serializer
//! visitors; see `vendor/serde` for the data model.

pub use serde::{DeError as Error, Deserialize, Serialize, Value};

use std::fmt::Write as _;

pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.serialize())
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    write_value(&mut s, &value.serialize(), None, 0);
    Ok(s)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    write_value(&mut s, &value.serialize(), Some(2), 0);
    Ok(s)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    T::deserialize(&v)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    let nl = |out: &mut String, d: usize| {
        if let Some(w) = indent {
            out.push('\n');
            for _ in 0..w * d {
                out.push(' ');
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                // Keep floats round-trippable; integral floats print x.0.
                if *f == f.trunc() && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            nl(out, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                nl(out, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            nl(out, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::new(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_lit("null").map(|_| Value::Null),
            Some(b't') => self.eat_lit("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this repo's data.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid utf-8 in string"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new("bad number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new("bad number"))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.parse_value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }
}

/// Builds a [`Value`] from JSON-like syntax: objects, arrays, `null`, and
/// arbitrary `Serialize` expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut entries: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::new();
        $crate::json_object_entries!(entries $($body)*);
        $crate::Value::Object(entries)
    }};
    ([ $($body:tt)* ]) => {{
        #[allow(unused_mut, clippy::vec_init_then_push)]
        let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
        $crate::json_array_items!(items $($body)*);
        $crate::Value::Array(items)
    }};
    ($other:expr) => { $crate::Serialize::serialize(&$other) };
}

/// Implementation detail of [`json!`]: munches `"key": value, ...` entries
/// one at a time so values can be nested containers or plain expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entries {
    ($vec:ident) => {};
    ($vec:ident $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $( $crate::json_object_entries!($vec $($rest)*); )?
    };
    ($vec:ident $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $( $crate::json_object_entries!($vec $($rest)*); )?
    };
    ($vec:ident $key:literal : null $(, $($rest:tt)*)?) => {
        $vec.push(($key.to_string(), $crate::Value::Null));
        $( $crate::json_object_entries!($vec $($rest)*); )?
    };
    ($vec:ident $key:literal : $val:expr) => {
        $vec.push(($key.to_string(), $crate::json!($val)));
    };
    ($vec:ident $key:literal : $val:expr, $($rest:tt)*) => {
        $vec.push(($key.to_string(), $crate::json!($val)));
        $crate::json_object_entries!($vec $($rest)*);
    };
}

/// Implementation detail of [`json!`]: munches array items.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_items {
    ($vec:ident) => {};
    ($vec:ident { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!({ $($inner)* }));
        $( $crate::json_array_items!($vec $($rest)*); )?
    };
    ($vec:ident [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $vec.push($crate::json!([ $($inner)* ]));
        $( $crate::json_array_items!($vec $($rest)*); )?
    };
    ($vec:ident null $(, $($rest:tt)*)?) => {
        $vec.push($crate::Value::Null);
        $( $crate::json_array_items!($vec $($rest)*); )?
    };
    ($vec:ident $val:expr) => {
        $vec.push($crate::json!($val));
    };
    ($vec:ident $val:expr, $($rest:tt)*) => {
        $vec.push($crate::json!($val));
        $crate::json_array_items!($vec $($rest)*);
    };
}

#[cfg(test)]
// `json!` expands to build-by-push; the lint's `vec![..]` suggestion cannot
// express the recursive entry expansion.
#[allow(clippy::vec_init_then_push)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = json!({
            "a": 1u32,
            "nested": { "b": [1u32, 2u32], "s": "hi" },
        });
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":1,"nested":{"b":[1,2],"s":"hi"}}"#);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(to_string(&back).unwrap(), s);
    }

    #[test]
    fn index_assign_appends() {
        let mut v = json!({ "a": 1u32 });
        v["b"] = Value::String("x".into());
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":"x"}"#);
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(from_str::<u64>("3356").unwrap(), 3356);
        assert_eq!(from_str::<i64>("-2").unwrap(), -2);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }
}
