//! Offline façade of the `proptest` API surface this workspace uses.
//!
//! Each `proptest!` test runs `ProptestConfig::cases` randomized cases
//! from a seed derived deterministically from the test's name, so runs
//! are reproducible. On failure the offending inputs are printed via the
//! panic message. There is **no shrinking** — failures report the raw
//! generated values — which keeps this façade small while preserving the
//! bug-finding power of the randomized sweep.

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a, used to derive a per-test seed from its name.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps `cargo test` snappy while
        // still sweeping enough of the space to catch regressions.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values — the façade's strategies produce a value per
/// case directly (no value tree, no shrinking).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derived strategy applying `f` to every generated value.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// What [`Strategy::prop_map`] returns.
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for MapStrategy<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

// Tuples of strategies generate tuples of values (left to right), as in
// real proptest.
macro_rules! impl_tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($s,)+) = self;
                $(let $v = $s.generate(rng);)+
                ($($v,)+)
            }
        }
    };
}

impl_tuple_strategy!(S1 / v1, S2 / v2);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4);
impl_tuple_strategy!(S1 / v1, S2 / v2, S3 / v3, S4 / v4, S5 / v5);

/// `any::<T>()` for primitives.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Always yields a clone of the given value.
pub struct JustStrategy<T: Clone>(pub T);

impl<T: Clone> Strategy for JustStrategy<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[allow(non_snake_case)]
pub fn Just<T: Clone>(value: T) -> JustStrategy<T> {
    JustStrategy(value)
}

/// Function-backed strategy; what `prop_compose!` expands to.
pub struct FnStrategy<F>(pub F);

impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length spec for [`vec`]: a fixed size or a range of sizes.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (s, e) = (*self.start(), *self.end());
            s + (rng.next_u64() as usize) % (e - s + 1)
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S>(S);

    /// `None` one case in four, matching proptest's default weighting
    /// closely enough for these tests.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// One randomized test: `proptest! { #[test] fn name(x in strat, ...) { body } }`.
/// The body runs once per case; `prop_assert*!`/`prop_assume!` short-circuit
/// the case via `Result`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (
        ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let seed = $crate::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                let mut rng = $crate::TestRng::seed_from_u64(seed);
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    // Render inputs up front: the body may consume them.
                    let inputs: ::std::string::String =
                        [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", ");
                    let result: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = result {
                        panic!(
                            "proptest case {case} of {} failed: {msg}\n  inputs: {inputs}",
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// Defines a named strategy from component strategies:
/// `prop_compose! { fn name()(x in strat, ...) -> T { body } }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:ident: $outer_ty:ty),* $(,)?)
            ($($arg:ident in $strat:expr),* $(,)?) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer: $outer_ty),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::FnStrategy(move |rng: &mut $crate::TestRng| -> $ret {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)*
                $body
            })
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            // Not a failure — the case just doesn't apply.
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} ({})\n  both: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l
            ));
        }
    }};
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn small_even()(half in 0u32..50) -> u32 {
            half * 2
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in 1u8..=32) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=32).contains(&y));
        }

        #[test]
        fn composed_strategy_applies_body(n in small_even()) {
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_and_option_strategies(
            v in crate::collection::vec(any::<u8>(), 4),
            o in crate::option::of(1u32..5),
        ) {
            prop_assert_eq!(v.len(), 4);
            if let Some(x) = o {
                prop_assert!((1..5).contains(&x));
            }
        }

        #[test]
        fn assume_skips_cases(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }

        #[test]
        fn tuple_and_map_strategies(
            pair in (1u32..5, 10u32..20).prop_map(|(a, b)| a + b),
            triples in crate::collection::vec((0u8..3, 0u8..3), 0..4),
        ) {
            prop_assert!((11..25).contains(&pair));
            for (a, b) in triples {
                prop_assert!(a < 3 && b < 3);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn config_override_accepted(_x in 0u32..2) {
            prop_assert!(true);
        }
    }
}
