//! `#[derive(Serialize, Deserialize)]` for the vendored serde façade.
//!
//! The build environment has no crates.io access, so this macro is written
//! against `proc_macro` alone — no `syn`, no `quote`. It hand-parses the
//! derive input (attributes, visibility, struct/enum shape, field names)
//! and emits impls of the façade's value-based `Serialize`/`Deserialize`
//! traits as source text.
//!
//! Supported shapes: structs with named fields, tuple structs (including
//! `#[serde(transparent)]` newtypes), and enums whose variants are unit,
//! tuple, or struct-like (externally tagged, like real serde). Generic
//! types are not supported — nothing in the workspace derives on them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Named(Vec<String>),
    Tuple(usize),
    Enum(Vec<(String, VariantShape)>),
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Splits a token sequence on commas that sit outside `<...>` nesting.
/// Delimited groups are single tokens, so only angle brackets need depth
/// tracking.
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<&TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strips leading attributes (`#[...]`) from a token slice, returning the
/// remainder and whether any attribute was `#[serde(transparent)]`.
fn skip_attrs(mut tokens: &[TokenTree]) -> (&[TokenTree], bool) {
    let mut transparent = false;
    loop {
        match tokens {
            [TokenTree::Punct(p), TokenTree::Group(g), rest @ ..] if p.as_char() == '#' => {
                let inner = g.stream().to_string().replace(' ', "");
                if inner.starts_with("serde(") && inner.contains("transparent") {
                    transparent = true;
                }
                tokens = rest;
            }
            _ => return (tokens, transparent),
        }
    }
}

/// Strips a leading visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    match tokens {
        [TokenTree::Ident(i), rest @ ..] if i.to_string() == "pub" => match rest {
            [TokenTree::Group(g), r2 @ ..] if g.delimiter() == Delimiter::Parenthesis => r2,
            _ => rest,
        },
        _ => tokens,
    }
}

/// Field names of a named-field body (struct or struct variant).
fn named_fields(group_tokens: &[TokenTree]) -> Vec<String> {
    split_top_commas(group_tokens)
        .into_iter()
        .filter_map(|chunk| {
            let owned: Vec<TokenTree> = chunk.into_iter().cloned().collect();
            let (rest, _) = skip_attrs(&owned);
            let rest = skip_vis(rest);
            match rest {
                [TokenTree::Ident(name), TokenTree::Punct(c), ..] if c.as_char() == ':' => {
                    Some(name.to_string())
                }
                _ => None,
            }
        })
        .collect()
}

/// Field count of a tuple body.
fn tuple_arity(group_tokens: &[TokenTree]) -> usize {
    split_top_commas(group_tokens)
        .into_iter()
        .filter(|c| !c.is_empty())
        .count()
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (rest, _transparent) = skip_attrs(&tokens);
    let rest = skip_vis(rest);
    let (kind, rest) = match rest {
        [TokenTree::Ident(k), rest @ ..] => (k.to_string(), rest),
        _ => panic!("serde_derive: expected `struct` or `enum`"),
    };
    let (name, rest) = match rest {
        [TokenTree::Ident(n), rest @ ..] => (n.to_string(), rest),
        _ => panic!("serde_derive: expected type name"),
    };
    if let Some(TokenTree::Punct(p)) = rest.first() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (type {name})");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match rest {
            [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Named(named_fields(&inner))
            }
            [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Shape::Tuple(tuple_arity(&inner))
            }
            _ => panic!("serde_derive: unsupported struct body for {name}"),
        },
        "enum" => match rest {
            [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let variants = split_top_commas(&inner)
                    .into_iter()
                    .filter(|c| !c.is_empty())
                    .map(|chunk| {
                        let owned: Vec<TokenTree> = chunk.into_iter().cloned().collect();
                        let (rest, _) = skip_attrs(&owned);
                        match rest {
                            [TokenTree::Ident(v)] => (v.to_string(), VariantShape::Unit),
                            [TokenTree::Ident(v), TokenTree::Group(g)]
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                                (v.to_string(), VariantShape::Tuple(tuple_arity(&inner)))
                            }
                            [TokenTree::Ident(v), TokenTree::Group(g)]
                                if g.delimiter() == Delimiter::Brace =>
                            {
                                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                                (v.to_string(), VariantShape::Named(named_fields(&inner)))
                            }
                            _ => panic!("serde_derive: unsupported variant in {name}"),
                        }
                    })
                    .collect();
                Shape::Enum(variants)
            }
            _ => panic!("serde_derive: unsupported enum body for {name}"),
        },
        other => panic!("serde_derive: cannot derive on `{other}`"),
    };
    Input { name, shape }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, vs)| match vs {
                    VariantShape::Unit => {
                        format!("{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),")
                    }
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(f0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                         ::serde::Serialize::serialize(f0))]),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), \
                             ::serde::Value::Array(vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::serialize({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (\"{v}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let Input { name, shape } = parse_input(input);
    let body = match &shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(::serde::__get_field(obj, \"{f}\"))?"
                    )
                })
                .collect();
            format!(
                "let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::new(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize(arr.get({i}).ok_or_else(|| \
                         ::serde::DeError::new(\"tuple too short for {name}\"))?)?"
                    )
                })
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| \
                 ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, vs)| matches!(vs, VariantShape::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, vs)| match vs {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::deserialize(inner)?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::deserialize(arr.get({i}).ok_or_else(|| \
                                     ::serde::DeError::new(\"variant tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let arr = inner.as_array().ok_or_else(|| \
                             ::serde::DeError::new(\"expected array variant\"))?; \
                             ::std::result::Result::Ok({name}::{v}({})) }}",
                            inits.join(", ")
                        ))
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize(\
                                     ::serde::__get_field(o, \"{f}\"))?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let o = inner.as_object().ok_or_else(|| \
                             ::serde::DeError::new(\"expected object variant\"))?; \
                             ::std::result::Result::Ok({name}::{v} {{ {} }}) }}",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::String(s) = v {{\n\
                     return match s.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::DeError::new(\
                             format!(\"unknown variant {{other}} of {name}\"))),\n\
                     }};\n\
                 }}\n\
                 if let ::std::option::Option::Some(obj) = v.as_object() {{\n\
                     if let ::std::option::Option::Some((tag, inner)) = obj.first() {{\n\
                         return match tag.as_str() {{\n\
                             {}\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 format!(\"unknown variant {{other}} of {name}\"))),\n\
                         }};\n\
                     }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::DeError::new(\"expected {name}\"))",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
             {{\n{body}\n}}\n\
         }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl parses")
}
