//! Offline façade of the `criterion` API surface this workspace uses.
//!
//! Each `Bencher::iter` closure is timed over a fixed number of warm-up
//! plus measured iterations (scaled down by `sample_size`), and a
//! mean/min/max line is printed per benchmark. No HTML reports, no
//! statistical regression testing — just honest wall-clock numbers so
//! `cargo bench` runs offline and its output doubles as a transcript.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark identifier: `group/function` or `group/function/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

/// Anything usable as a bench name: `&str` or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    fn into_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: None,
        }
    }
}

pub struct Bencher {
    samples: usize,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // One untimed warm-up run, then the measured samples.
        std_black_box(routine());
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std_black_box(routine());
            times.push(t0.elapsed());
        }
        report(&times);
    }
}

fn report(times: &[Duration]) {
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let max = times.iter().max().copied().unwrap_or_default();
    println!(
        "    time: [min {min:>10.2?}  mean {mean:>10.2?}  max {max:>10.2?}]  ({} samples)",
        times.len()
    );
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        println!("{}/{}", self.name, id.into_id().render());
        let mut b = Bencher {
            samples: effective_samples(self.sample_size),
        };
        f(&mut b);
        self
    }

    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        println!("{}/{}", self.name, id.into_id().render());
        let mut b = Bencher {
            samples: effective_samples(self.sample_size),
        };
        f(&mut b, input);
        self
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion;
        println!();
    }
}

fn effective_samples(sample_size: usize) -> usize {
    // Criterion's default sample_size is 100, which assumes its adaptive
    // timing loop. This façade times each sample fully, so scale down to
    // keep `cargo bench` runs short. IR_BENCH_SAMPLES overrides.
    let configured = std::env::var("IR_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok());
    configured.unwrap_or_else(|| (sample_size / 5).clamp(3, 20))
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 100,
        }
    }

    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        println!("{name}");
        let mut b = Bencher {
            samples: effective_samples(100),
        };
        f(&mut b);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run_closures() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("smoke");
            g.sample_size(10);
            g.bench_function("counts", |b| b.iter(|| ran += 1));
            g.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
            g.finish();
        }
        assert!(ran > 0);
    }
}
