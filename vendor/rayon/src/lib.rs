//! Offline façade of the `rayon` API surface this workspace uses:
//! `par_iter().map(f).collect::<Vec<_>>()` over slices.
//!
//! This is real data parallelism, not a sequential shim: the input is split
//! into contiguous chunks, one per available core, each chunk is mapped on
//! its own scoped thread, and the per-chunk outputs are concatenated in
//! chunk order — so `collect` returns results in exactly the input order,
//! same as rayon's indexed parallel iterators.

use std::num::NonZeroUsize;

fn worker_count(len: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        self.map(f).run();
    }
}

pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    fn run<U>(self) -> Vec<U>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        let n = self.items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = worker_count(n);
        if workers == 1 {
            return self.items.iter().map(&self.f).collect();
        }
        let chunk = n.div_ceil(workers);
        let f = &self.f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<U>>()))
                .collect();
            let mut out = Vec::with_capacity(n);
            for h in handles {
                out.extend(h.join().expect("rayon façade worker panicked"));
            }
            out
        })
    }

    pub fn collect<U, C>(self) -> C
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
        C: From<Vec<U>>,
    {
        C::from(self.run())
    }
}

/// `&collection → par_iter()`, mirroring rayon's trait of the same name.
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;

    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

pub mod prelude {
    pub use super::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_input_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let out: Vec<u64> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let input: Vec<u32> = Vec::new();
        let out: Vec<u32> = input.par_iter().map(|x| *x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let input: Vec<u32> = (0..4096).collect();
        let _: Vec<()> = input
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        let n = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism()
            .map(|c| c.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(
                n > 1,
                "expected >1 worker thread on a {cores}-core host, saw {n}"
            );
        }
    }
}
