//! Offline façade of the `rand` 0.9 API surface this workspace uses.
//!
//! [`rngs::StdRng`] is a splitmix64 generator — statistically fine for the
//! synthetic-topology and sampling workloads here, deterministic per seed,
//! and dependency-free. The trait layout mirrors rand 0.9: [`RngCore`],
//! [`Rng`] (blanket over `RngCore`), [`SeedableRng`], and the slice helpers
//! from `seq` re-exported through [`prelude`].

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, mirroring `rand::distr::uniform`'s role.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types producible by [`Rng::random`].
pub trait StandardUniform: Sized {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardUniform for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub trait Rng: RngCore {
    fn random<T: StandardUniform>(&mut self) -> T {
        T::from_rng(self)
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Splitmix64: a small, fast, full-period-per-seed generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Fisher–Yates shuffle for slices.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }

    /// Random element choice for slices.
    pub trait IndexedRandom {
        type Output;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::{IndexedRandom, SliceRandom};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(0..10);
            assert!(x < 10);
            let y: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_picks_existing_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [10u32, 20, 30];
        for _ in 0..20 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
